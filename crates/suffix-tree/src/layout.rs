//! Flat, cache-conscious serving layout.
//!
//! The mutable [`SuffixTree`] is the *construction* form: every internal node
//! owns a heap `Vec<NodeId>`, so one edge descent costs two dependent cache
//! misses (node → child vector → child node) and a node weighs ~48 bytes plus
//! the vector's heap block. Once `BuildSubTree` finishes, the tree never
//! mutates again — queries only descend it — so ERA freezes each partition
//! into a [`FlatTree`]:
//!
//! * one contiguous arena of 16-byte [`FlatNode`] records;
//! * the children of every node occupy one contiguous id range, ordered by
//!   the first character of their edge labels, so child lookup is a binary
//!   search over *adjacent* records (one cache line holds four of them);
//! * child blocks are laid out in depth-first order of their parents, so a
//!   descent — and the subtree walk `Locate`/`Count` perform below the match
//!   node — moves mostly forward through the arena instead of chasing heap
//!   pointers;
//! * leaf/internal is a tag bit; the leaf's suffix offset and the internal
//!   node's `children_start` share one payload word; no parent pointers
//!   (descents only ever walk down).
//!
//! The freeze is deterministic: two structurally equal [`SuffixTree`]s always
//! freeze to byte-identical [`FlatTree`]s, so the scheduler-equivalence
//! guarantees (serial, shared-memory and shared-nothing builds produce the
//! same index) carry over to the serving form unchanged. [`FlatTree::thaw`]
//! converts back for the rare consumers that need the mutable form.

use era_string_store::{StoreResult, TextSource};

use crate::node::{Node, NodeData, NodeId, NO_NODE};
use crate::query::MatchResult;
use crate::stats::TreeStats;
use crate::tree::SuffixTree;

/// Size of one flat node record in bytes.
pub const FLAT_NODE_BYTES: usize = std::mem::size_of::<FlatNode>();

const LEAF_BIT: u32 = 1 << 31;
const CHILDREN_LEN_MASK: u32 = 0xFFFF;
const FIRST_CHAR_SHIFT: u32 = 16;
/// Meta-word bits not covered by the leaf tag, the packed first character, or
/// the child count. The writer never sets them and validation requires them to
/// be zero, so single-bit corruption cannot hide in slack bits.
pub(crate) const RESERVED_META_MASK: u32 =
    !(LEAF_BIT | (0xFF << FIRST_CHAR_SHIFT) | CHILDREN_LEN_MASK);

/// One 16-byte record of a [`FlatTree`] arena.
///
/// `start`/`end` are the incoming edge label offsets into the text (both zero
/// for the root). The payload word holds the suffix offset for leaves and the
/// first child id for internal nodes; the meta word packs the child count
/// (bits 0–15), the cached first edge character (bits 16–23) and the leaf tag
/// (bit 31).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlatNode {
    /// Start offset (inclusive) of the incoming edge label.
    pub start: u32,
    /// End offset (exclusive) of the incoming edge label.
    pub end: u32,
    payload: u32,
    meta: u32,
}

impl FlatNode {
    /// Rebuilds a record from its raw serialized words (deserialization
    /// only; [`crate::serialize::read_flat_tree`] validates the invariants).
    pub(crate) fn from_raw(start: u32, end: u32, payload: u32, meta: u32) -> FlatNode {
        FlatNode { start, end, payload, meta }
    }

    fn leaf(start: u32, end: u32, first_char: u8, suffix: u32) -> FlatNode {
        FlatNode {
            start,
            end,
            payload: suffix,
            meta: LEAF_BIT | (u32::from(first_char) << FIRST_CHAR_SHIFT),
        }
    }

    fn internal(start: u32, end: u32, first_char: u8, children_start: u32, len: u32) -> FlatNode {
        debug_assert!(len <= CHILDREN_LEN_MASK);
        FlatNode {
            start,
            end,
            payload: children_start,
            meta: len | (u32::from(first_char) << FIRST_CHAR_SHIFT),
        }
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        self.meta & LEAF_BIT != 0
    }

    /// First character of the incoming edge label (0 for the root).
    pub fn first_char(&self) -> u8 {
        (self.meta >> FIRST_CHAR_SHIFT) as u8
    }

    /// The suffix offset if this node is a leaf.
    pub fn suffix(&self) -> Option<u32> {
        if self.is_leaf() {
            Some(self.payload)
        } else {
            None
        }
    }

    /// Length of the incoming edge label.
    pub fn edge_len(&self) -> u32 {
        self.end - self.start
    }

    /// The contiguous id range of this node's children (empty for leaves).
    pub fn children_range(&self) -> std::ops::Range<u32> {
        if self.is_leaf() {
            0..0
        } else {
            self.payload..self.payload + (self.meta & CHILDREN_LEN_MASK)
        }
    }
}

/// A frozen suffix (sub-)tree: one contiguous arena of [`FlatNode`] records,
/// children packed adjacently in `first_char` order. Node 0 is the root.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FlatTree {
    text_len: u32,
    nodes: Vec<FlatNode>,
}

/// One frozen vertical partition: the flat sub-tree indexing all suffixes
/// that share the S-prefix `prefix`. The serving-path counterpart of the
/// construction-form [`crate::Partition`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlatPartition {
    /// The variable-length S-prefix identifying the partition.
    pub prefix: Vec<u8>,
    /// The frozen sub-tree over the suffixes starting with `prefix`.
    pub tree: FlatTree,
}

impl FlatTree {
    /// Freezes a construction-form tree into the flat layout.
    ///
    /// Ids are assigned by a depth-first walk that hands every node's
    /// children one contiguous block, leftmost subtree first — siblings are
    /// adjacent (child lookup never leaves the cache-line run) and the
    /// blocks of a descent path sit close together in the arena. The pass is
    /// O(nodes) and deterministic: structurally equal inputs freeze to
    /// byte-identical arenas.
    pub fn freeze(tree: &SuffixTree) -> FlatTree {
        let n = tree.node_count();
        let mut nodes = vec![FlatNode::default(); n];
        let mut next_free = 1u32;
        // (construction id, flat id) — flat ids are pre-assigned when the
        // parent is popped; pushing children in reverse pops the leftmost
        // first, which keeps its whole subtree in front of its siblings'.
        let mut stack: Vec<(NodeId, u32)> = vec![(tree.root(), 0)];
        while let Some((old, new)) = stack.pop() {
            let src = tree.node(old);
            match &src.data {
                NodeData::Leaf { suffix } => {
                    nodes[new as usize] =
                        FlatNode::leaf(src.start, src.end, src.first_char, *suffix);
                }
                NodeData::Internal { children } => {
                    // Child blocks are laid out in construction-child order;
                    // binary-search dispatch over the block is only sound if
                    // that order is strictly increasing by first character.
                    #[cfg(feature = "paranoid")]
                    assert!(
                        children
                            .windows(2)
                            .all(|w| tree.node(w[0]).first_char < tree.node(w[1]).first_char),
                        "freeze: children of construction node {old} are not strictly \
                         ordered by first character"
                    );
                    let start = next_free;
                    next_free += children.len() as u32;
                    nodes[new as usize] = FlatNode::internal(
                        src.start,
                        src.end,
                        src.first_char,
                        start,
                        children.len() as u32,
                    );
                    for (k, &c) in children.iter().enumerate().rev() {
                        stack.push((c, start + k as u32));
                    }
                }
            }
        }
        debug_assert_eq!(next_free as usize, n);
        FlatTree { text_len: tree.text_len() as u32, nodes }
    }

    /// Rebuilds the mutable construction form (ids preserved).
    ///
    /// Used by validation and by benchmarks that compare the two layouts;
    /// the serving path never needs it.
    pub fn thaw(&self) -> SuffixTree {
        let mut parents = vec![NO_NODE; self.nodes.len()];
        for (id, node) in self.nodes.iter().enumerate() {
            for c in node.children_range() {
                parents[c as usize] = id as NodeId;
            }
        }
        let mut tree = SuffixTree::with_capacity(self.text_len as usize, self.nodes.len());
        for (id, node) in self.nodes.iter().enumerate() {
            let data = match node.suffix() {
                Some(suffix) => NodeData::Leaf { suffix },
                None => NodeData::Internal { children: node.children_range().collect() },
            };
            let raw = Node {
                start: node.start,
                end: node.end,
                parent: parents[id],
                first_char: node.first_char(),
                data,
            };
            if id == 0 {
                *tree.node_mut(0) = raw;
            } else {
                tree.push_raw(raw);
            }
        }
        tree
    }

    /// Builds a flat tree directly from raw records (deserialization only).
    pub(crate) fn from_raw_parts(text_len: u32, nodes: Vec<FlatNode>) -> FlatTree {
        FlatTree { text_len, nodes }
    }

    /// Raw record fields `(start, end, payload, meta)` of node `id`
    /// (serialization only).
    pub(crate) fn raw_node(&self, id: u32) -> (u32, u32, u32, u32) {
        let n = &self.nodes[id as usize];
        (n.start, n.end, n.payload, n.meta)
    }

    /// The raw child-count bits of node `id`'s meta word — reported even for
    /// leaves, whose count [`FlatNode::children_range`] hides. Validation
    /// uses this to reject leaf records smuggling a non-zero count.
    pub(crate) fn raw_children_len(&self, id: u32) -> u32 {
        self.nodes[id as usize].meta & CHILDREN_LEN_MASK
    }

    /// The raw payload word of node `id` (suffix offset for leaves, first
    /// child id for internal nodes), for overflow-safe bounds validation.
    pub(crate) fn raw_payload(&self, id: u32) -> u32 {
        self.nodes[id as usize].payload
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Length of the indexed text (including the terminal).
    pub fn text_len(&self) -> usize {
        self.text_len as usize
    }

    /// Total number of nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node record.
    // era-check: allow(panic-path): node ids are validated by validate_flat_structure on load
    pub fn node(&self, id: NodeId) -> &FlatNode {
        &self.nodes[id as usize]
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len() as NodeId
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of internal nodes (including the root).
    pub fn internal_count(&self) -> usize {
        self.nodes.len() - self.leaf_count()
    }

    /// Exact in-memory size of the arena in bytes (16 bytes per node; the
    /// flat layout has no per-node heap blocks to estimate).
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * FLAT_NODE_BYTES
    }

    /// Looks up the child of `id` whose incoming edge starts with `c`: a
    /// binary search over the node's contiguous child run.
    // era-check: hot
    // era-check: allow(panic-path): children_range is validated against nodes.len() on load
    pub fn child_starting_with(&self, id: NodeId, c: u8) -> Option<NodeId> {
        let range = self.node(id).children_range();
        let slice = &self.nodes[range.start as usize..range.end as usize];
        slice
            .binary_search_by_key(&c, |child| child.first_char())
            .ok()
            .map(|i| range.start + i as u32)
    }

    /// Matches `pattern` from the root, resolving edge labels through any
    /// [`TextSource`]. Semantics are identical to
    /// [`SuffixTree::try_match_pattern`]: the packed `first_char` cache is a
    /// read-avoidance device only, the text stays authoritative, and a stale
    /// cache entry falls back to a sibling scan instead of reporting a false
    /// `NoMatch`.
    // era-check: allow(panic-path): matched < pattern.len() is the walk loop invariant
    pub fn try_match_pattern<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<MatchResult> {
        if pattern.is_empty() {
            return Ok(MatchResult::Complete { node: self.root() });
        }
        let mut node = self.root();
        let mut matched = 0usize;
        'walk: loop {
            let direct = self.child_starting_with(node, pattern[matched]);
            if let Some(child) = direct {
                let before = matched;
                match self.match_edge(text, pattern, &mut matched, child)? {
                    Some(MatchResult::NoMatch) if matched == before => {}
                    Some(r) => return Ok(r),
                    None => {
                        node = child;
                        continue 'walk;
                    }
                }
            }
            // Fallback: only the edge text decides which child to follow.
            let mut found = None;
            for c in self.node(node).children_range() {
                if direct == Some(c) {
                    continue; // its edge text already ruled it out above
                }
                if text.symbol_at(self.node(c).start as usize)? == pattern[matched] {
                    found = Some(c);
                    break;
                }
            }
            match found {
                Some(c) => {
                    if let Some(r) = self.match_edge(text, pattern, &mut matched, c)? {
                        return Ok(r);
                    }
                    node = c;
                }
                None => return Ok(MatchResult::NoMatch),
            }
        }
    }

    /// Matches as much of `pattern` as possible along the edge into `child`.
    // era-check: hot
    // era-check: allow(panic-path): *matched < pattern.len() checked by the caller
    fn match_edge<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
        matched: &mut usize,
        child: NodeId,
    ) -> StoreResult<Option<MatchResult>> {
        let ch = self.node(child);
        let label_len = (ch.end as usize).min(text.len()) - ch.start as usize;
        let remaining = &pattern[*matched..];
        let k = text.common_prefix(ch.start as usize, ch.end as usize, remaining)?;
        *matched += k;
        Ok(if *matched == pattern.len() {
            Some(MatchResult::Complete { node: child })
        } else if k < label_len {
            Some(MatchResult::NoMatch)
        } else {
            None
        })
    }

    /// Matches `pattern` from the root, comparing edge labels against `text`.
    pub fn match_pattern(&self, text: &[u8], pattern: &[u8]) -> MatchResult {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_match_pattern(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// Whether `pattern` occurs in the text behind any [`TextSource`].
    pub fn try_contains<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<bool> {
        Ok(matches!(self.try_match_pattern(text, pattern)?, MatchResult::Complete { .. }))
    }

    /// Whether `pattern` occurs in the indexed text.
    pub fn contains(&self, text: &[u8], pattern: &[u8]) -> bool {
        matches!(self.match_pattern(text, pattern), MatchResult::Complete { .. })
    }

    /// All occurrence positions of `pattern` behind any [`TextSource`], in
    /// lexicographic order of the suffixes that start with it.
    pub fn try_find_all<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<Vec<u32>> {
        Ok(match self.try_match_pattern(text, pattern)? {
            MatchResult::Complete { node } => self.leaves_below(node),
            MatchResult::NoMatch => Vec::new(),
        })
    }

    /// All occurrence positions of `pattern`, in lexicographic order of the
    /// suffixes that start with it.
    pub fn find_all(&self, text: &[u8], pattern: &[u8]) -> Vec<u32> {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_find_all(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// All occurrence positions of `pattern`, sorted ascending.
    pub fn find_all_sorted(&self, text: &[u8], pattern: &[u8]) -> Vec<u32> {
        let mut out = self.find_all(text, pattern);
        out.sort_unstable();
        out
    }

    /// Number of occurrences of `pattern` behind any [`TextSource`].
    pub fn try_count<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<usize> {
        Ok(match self.try_match_pattern(text, pattern)? {
            MatchResult::Complete { node } => self.leaf_count_below(node),
            MatchResult::NoMatch => 0,
        })
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, text: &[u8], pattern: &[u8]) -> usize {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_count(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// All leaf suffix offsets below `id` (inclusive), in lexicographic
    /// order (an explicit stack with children pushed in reverse, exactly
    /// like the construction form).
    pub fn leaves_below(&self, id: NodeId) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let node = self.node(cur);
            match node.suffix() {
                Some(suffix) => out.push(suffix),
                None => {
                    for c in node.children_range().rev() {
                        stack.push(c);
                    }
                }
            }
        }
        out
    }

    /// Number of leaves at or below `id` (inclusive), allocation-free.
    pub fn leaf_count_below(&self, id: NodeId) -> usize {
        let mut count = 0usize;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            let node = self.node(cur);
            if node.is_leaf() {
                count += 1;
            } else {
                stack.extend(node.children_range());
            }
        }
        count
    }

    /// All suffix offsets in lexicographic order (the suffix array of the
    /// indexed suffixes).
    pub fn lexicographic_suffixes(&self) -> Vec<u32> {
        self.leaves_below(self.root())
    }

    /// Depth-first traversal yielding `(node, string_depth)` pairs in
    /// lexicographic order.
    pub fn dfs(&self) -> Vec<(NodeId, u32)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root(), 0u32)];
        while let Some((cur, depth)) = stack.pop() {
            out.push((cur, depth));
            for c in self.node(cur).children_range().rev() {
                stack.push((c, depth + self.node(c).edge_len()));
            }
        }
        out
    }

    /// Structural statistics of the tree, including the exact arena size.
    pub fn stats(&self) -> TreeStats {
        let mut stats = TreeStats {
            nodes: self.nodes.len(),
            arena_bytes: self.approx_bytes(),
            ..TreeStats::default()
        };
        for (id, depth) in self.dfs() {
            let n = self.node(id);
            if n.is_leaf() {
                stats.leaves += 1;
            } else {
                stats.internal += 1;
                if id != self.root() {
                    stats.max_internal_depth = stats.max_internal_depth.max(depth);
                }
            }
            stats.max_depth = stats.max_depth.max(depth);
        }
        stats
    }

    /// The longest substring that occurs at least twice, as
    /// `(offset, length)` — the deepest internal node of the tree.
    pub fn longest_repeated_substring(&self, _text: &[u8]) -> Option<(u32, u32)> {
        let mut best: Option<(u32, u32)> = None; // (depth, node)
        for (id, depth) in self.dfs() {
            if !self.node(id).is_leaf()
                && id != self.root()
                && depth > 0
                && best.map(|(d, _)| depth > d).unwrap_or(true)
            {
                best = Some((depth, id));
            }
        }
        best.map(|(depth, id)| {
            let leaf = self.leaves_below(id)[0];
            (leaf, depth)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_tree;
    use crate::validate::validate_suffix_tree;
    use era_string_store::{InMemoryStore, StoreTextSource};

    fn tree_for(body: &[u8]) -> (Vec<u8>, SuffixTree) {
        let mut text = body.to_vec();
        text.push(0);
        let t = naive_suffix_tree(&text);
        (text, t)
    }

    #[test]
    fn freeze_preserves_structure_and_counts() {
        for body in
            [&b"banana"[..], b"mississippi", b"TGGTGGTGGTGCGGTGATGGTGC", b"aaaa", b"a", b"abcd"]
        {
            let (text, t) = tree_for(body);
            let flat = FlatTree::freeze(&t);
            assert_eq!(flat.node_count(), t.node_count());
            assert_eq!(flat.leaf_count(), t.leaf_count());
            assert_eq!(flat.internal_count(), t.internal_count());
            assert_eq!(flat.text_len(), t.text_len());
            assert_eq!(flat.lexicographic_suffixes(), t.lexicographic_suffixes());
            let s_vec = t.stats();
            let s_flat = flat.stats();
            assert_eq!(s_flat.leaves, s_vec.leaves);
            assert_eq!(s_flat.max_depth, s_vec.max_depth);
            assert_eq!(s_flat.max_internal_depth, s_vec.max_internal_depth);
            assert_eq!(s_flat.arena_bytes, flat.node_count() * FLAT_NODE_BYTES);
            // The flat arena is the compact layout the issue demands.
            assert!(flat.approx_bytes() * 10 <= t.approx_bytes() * 7, "body {body:?}");
            // Thawing reproduces a structurally valid construction tree.
            validate_suffix_tree(&flat.thaw(), &text, Some(text.len())).unwrap();
        }
    }

    #[test]
    fn children_are_contiguous_and_sorted() {
        let (_, t) = tree_for(b"mississippi");
        let flat = FlatTree::freeze(&t);
        for id in flat.node_ids() {
            let range = flat.node(id).children_range();
            let firsts: Vec<u8> = range.clone().map(|c| flat.node(c).first_char()).collect();
            let mut sorted = firsts.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(firsts, sorted, "children of {id} not strictly sorted");
            for c in range {
                assert!((c as usize) < flat.node_count());
            }
        }
    }

    #[test]
    fn child_blocks_cover_every_non_root_node_once() {
        let (_, t) = tree_for(b"abracadabra");
        let flat = FlatTree::freeze(&t);
        // Every non-root id is claimed by exactly one parent's child range.
        let mut owner = vec![0usize; flat.node_count()];
        for id in flat.node_ids() {
            for c in flat.node(id).children_range() {
                owner[c as usize] += 1;
            }
        }
        assert_eq!(owner[0], 0, "the root has no parent");
        assert!(owner[1..].iter().all(|&n| n == 1), "child ranges must partition the arena");
    }

    #[test]
    fn queries_match_construction_form() {
        let (text, t) = tree_for(b"mississippi");
        let flat = FlatTree::freeze(&t);
        for pattern in
            [&b"ss"[..], b"issi", b"i", b"mississippi", b"p", b"sip", b"", b"zzz", b"ippi2"]
        {
            assert_eq!(flat.find_all_sorted(&text, pattern), t.find_all_sorted(&text, pattern));
            assert_eq!(flat.count(&text, pattern), t.count(&text, pattern));
            assert_eq!(flat.contains(&text, pattern), t.contains(&text, pattern));
        }
        assert_eq!(
            flat.longest_repeated_substring(&text).map(|(_, l)| l),
            t.longest_repeated_substring(&text).map(|(_, l)| l)
        );
    }

    #[test]
    fn store_backed_source_answers_like_the_slice() {
        let (text, t) = tree_for(b"TGGTGGTGGTGCGGTGATGGTGC");
        let flat = FlatTree::freeze(&t);
        let store = InMemoryStore::new(
            text.clone(),
            era_string_store::Alphabet::infer(&text[..text.len() - 1]).unwrap(),
        )
        .unwrap()
        .with_block_size(4)
        .unwrap();
        let source = StoreTextSource::with_window(&store, 4);
        for pattern in [&b"TG"[..], b"TGGTG", b"GATT", b"", b"CCC"] {
            assert_eq!(flat.try_find_all(&source, pattern).unwrap(), flat.find_all(&text, pattern));
            assert_eq!(flat.try_count(&source, pattern).unwrap(), flat.count(&text, pattern));
        }
    }

    #[test]
    fn thaw_then_freeze_is_identity() {
        let (_, t) = tree_for(b"GATTACAGATTACA");
        let flat = FlatTree::freeze(&t);
        let again = FlatTree::freeze(&flat.thaw());
        assert_eq!(flat, again);
    }

    #[test]
    fn leaf_count_below_matches_leaves_below() {
        let (_, t) = tree_for(b"abracadabra");
        let flat = FlatTree::freeze(&t);
        for id in flat.node_ids() {
            assert_eq!(flat.leaf_count_below(id), flat.leaves_below(id).len(), "node {id}");
        }
    }

    #[test]
    fn root_only_tree_freezes() {
        let t = SuffixTree::new(1);
        let flat = FlatTree::freeze(&t);
        assert_eq!(flat.node_count(), 1);
        assert_eq!(flat.leaf_count(), 0);
        assert!(flat.lexicographic_suffixes().is_empty());
        assert_eq!(flat.thaw().node_count(), 1);
    }
}
