//! Structural invariant checking.
//!
//! Used by unit, integration and property tests to certify that every
//! construction algorithm (ERA, WaveFront, B²ST, Trellis, Ukkonen, naive)
//! produces a well-formed suffix tree with exactly the suffixes it claims to
//! index.

use std::collections::BTreeSet;
use std::fmt;

use crate::layout::FlatTree;
use crate::node::{NodeData, NodeId};
use crate::partitioned::PartitionedSuffixTree;
use crate::tree::SuffixTree;

/// A violated suffix-tree invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidationError {
    /// An internal node other than the root has fewer than two children.
    UnaryInternalNode(NodeId),
    /// Two sibling edges begin with the same character, or siblings are out of
    /// order.
    SiblingOrder(NodeId),
    /// A node's cached first character does not match the text.
    FirstCharMismatch(NodeId),
    /// A non-root node has an empty edge label.
    EmptyEdge(NodeId),
    /// A child's parent pointer does not point back to its parent.
    ParentMismatch(NodeId),
    /// The path label of a leaf does not spell the suffix it claims.
    WrongSuffix {
        /// The offending leaf.
        leaf: NodeId,
        /// The suffix offset stored in the leaf.
        suffix: u32,
    },
    /// The set of indexed suffixes differs from the expected set.
    WrongLeafSet {
        /// Number of leaves found.
        found: usize,
        /// Number of leaves expected.
        expected: usize,
    },
    /// An edge label range is out of bounds of the text.
    EdgeOutOfBounds(NodeId),
    /// A flat node's child range leaves the arena or claims the root.
    ChildRangeOutOfBounds(NodeId),
    /// A flat node is claimed as a child by more than one parent.
    ChildRangeOverlap(NodeId),
    /// A flat node (other than the root) is claimed by no parent at all.
    UnreachableNode(NodeId),
    /// A flat leaf record carries a non-zero child count in its meta word.
    LeafMetaInconsistent(NodeId),
    /// The root record of a flat arena is tagged as a leaf.
    RootIsLeaf,
    /// A flat node's meta word has reserved (unused) bits set.
    ReservedMetaBits(NodeId),
    /// The root record's unused fields (edge offsets, cached first character)
    /// are not zero.
    RootRecordNotCanonical,
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::UnaryInternalNode(n) => {
                write!(f, "internal node {n} has fewer than 2 children")
            }
            ValidationError::SiblingOrder(n) => {
                write!(f, "children of node {n} are not strictly ordered by first character")
            }
            ValidationError::FirstCharMismatch(n) => {
                write!(f, "cached first character of node {n} does not match the text")
            }
            ValidationError::EmptyEdge(n) => write!(f, "non-root node {n} has an empty edge label"),
            ValidationError::ParentMismatch(n) => {
                write!(f, "parent pointer of node {n} is inconsistent")
            }
            ValidationError::WrongSuffix { leaf, suffix } => {
                write!(f, "leaf {leaf} does not spell suffix {suffix}")
            }
            ValidationError::WrongLeafSet { found, expected } => {
                write!(f, "tree indexes {found} suffixes, expected {expected}")
            }
            ValidationError::EdgeOutOfBounds(n) => {
                write!(f, "edge label of node {n} is out of text bounds")
            }
            ValidationError::ChildRangeOutOfBounds(n) => {
                write!(f, "child range of node {n} leaves the arena or claims the root")
            }
            ValidationError::ChildRangeOverlap(n) => {
                write!(f, "node {n} is claimed as a child by more than one parent")
            }
            ValidationError::UnreachableNode(n) => {
                write!(f, "node {n} is not reachable from the root")
            }
            ValidationError::LeafMetaInconsistent(n) => {
                write!(f, "leaf {n} carries a non-zero child count in its meta word")
            }
            ValidationError::RootIsLeaf => write!(f, "the root record is tagged as a leaf"),
            ValidationError::ReservedMetaBits(n) => {
                write!(f, "meta word of node {n} has reserved bits set")
            }
            ValidationError::RootRecordNotCanonical => {
                write!(f, "root record's unused edge/first-char fields are not zero")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Validates a single suffix (sub-)tree against the text.
///
/// If `expected_leaves` is `Some(k)` the tree must contain exactly `k` leaves;
/// a complete suffix tree of `text` has `text.len()` leaves.
pub fn validate_suffix_tree(
    tree: &SuffixTree,
    text: &[u8],
    expected_leaves: Option<usize>,
) -> Result<(), ValidationError> {
    let n = text.len() as u32;
    let root = tree.root();

    for id in tree.node_ids() {
        let node = tree.node(id);
        if id != root {
            if node.start >= node.end || node.end > n {
                return Err(if node.end > n {
                    ValidationError::EdgeOutOfBounds(id)
                } else {
                    ValidationError::EmptyEdge(id)
                });
            }
            if node.first_char != text[node.start as usize] {
                return Err(ValidationError::FirstCharMismatch(id));
            }
        }
        match &node.data {
            NodeData::Internal { children } => {
                if id != root && children.len() < 2 {
                    return Err(ValidationError::UnaryInternalNode(id));
                }
                let mut prev: Option<u8> = None;
                for &c in children {
                    let child = tree.node(c);
                    if child.parent != id {
                        return Err(ValidationError::ParentMismatch(c));
                    }
                    if let Some(p) = prev {
                        if child.first_char <= p {
                            return Err(ValidationError::SiblingOrder(id));
                        }
                    }
                    prev = Some(child.first_char);
                }
            }
            NodeData::Leaf { suffix } => {
                let label = tree.path_label(id, text);
                if *suffix as usize >= text.len() || label != text[*suffix as usize..] {
                    return Err(ValidationError::WrongSuffix { leaf: id, suffix: *suffix });
                }
            }
        }
    }

    if let Some(expected) = expected_leaves {
        let found = tree.leaf_count();
        if found != expected {
            return Err(ValidationError::WrongLeafSet { found, expected });
        }
    }
    Ok(())
}

/// Validates the *structural* invariants of a flat arena without touching the
/// text: the cheap subset of [`validate_flat_tree`] that deserialization runs
/// on every `ERAFLAT1` load (`era-check fsck` runs it too, then adds the
/// text-backed deep checks).
///
/// Checked, in O(nodes) time and O(nodes) scratch:
///
/// * the arena is non-empty and node 0 (the root) is not a leaf;
/// * every child range stays inside the arena and never claims the root;
/// * the child ranges are disjoint and cover every non-root node exactly
///   once — equivalently, every node is reachable from the root and the
///   arena encodes a tree, not a DAG or a forest;
/// * every leaf's meta word carries a zero child count (the count bits share
///   the word with the leaf tag, so a corrupted tag would otherwise smuggle
///   in a bogus child range);
/// * children are strictly ordered by their cached `first_char`, so the
///   binary-search child dispatch is sound;
/// * every non-root node has a non-empty edge range with `end` within the
///   recorded text length, and internal non-root nodes have at least two
///   children;
/// * no record sets reserved meta-word bits, and the root's unused fields
///   (edge offsets, first-char cache) are zero — every bit of every record
///   is load-bearing, so no single-bit corruption can go undetected.
pub fn validate_flat_structure(tree: &FlatTree) -> Result<(), ValidationError> {
    let n = tree.node_count();
    let root = tree.root();
    if tree.node(root).is_leaf() {
        return Err(ValidationError::RootIsLeaf);
    }
    // The root's edge fields and first-char cache are unused by every reader;
    // requiring them to be zero (as the writer emits them) keeps every bit of
    // the record load-bearing, so single-bit corruption cannot hide in them.
    {
        let (start, end, _, _) = tree.raw_node(root);
        if start != 0 || end != 0 || tree.node(root).first_char() != 0 {
            return Err(ValidationError::RootRecordNotCanonical);
        }
    }
    let text_len = tree.text_len() as u32;
    let mut claimed = vec![false; n];
    for id in tree.node_ids() {
        let node = tree.node(id);
        if tree.raw_node(id).3 & crate::layout::RESERVED_META_MASK != 0 {
            return Err(ValidationError::ReservedMetaBits(id));
        }
        if node.is_leaf() && tree.raw_children_len(id) != 0 {
            return Err(ValidationError::LeafMetaInconsistent(id));
        }
        if id != root {
            if node.start >= node.end {
                return Err(ValidationError::EmptyEdge(id));
            }
            if node.end > text_len {
                return Err(ValidationError::EdgeOutOfBounds(id));
            }
            if !node.is_leaf() && tree.raw_children_len(id) < 2 {
                return Err(ValidationError::UnaryInternalNode(id));
            }
        }
        // Bounds first, on the raw words: `children_range()` adds payload and
        // count, which must not be allowed to overflow on untrusted bytes.
        let (len, payload) = (tree.raw_children_len(id), tree.raw_payload(id));
        let claims_children = !node.is_leaf() && len > 0;
        if claims_children && (payload == 0 || u64::from(payload) + u64::from(len) > n as u64) {
            return Err(ValidationError::ChildRangeOutOfBounds(id));
        }
        let mut prev: Option<u8> = None;
        for c in node.children_range() {
            if claimed[c as usize] {
                return Err(ValidationError::ChildRangeOverlap(c));
            }
            claimed[c as usize] = true;
            let fc = tree.node(c).first_char();
            if let Some(p) = prev {
                if fc <= p {
                    return Err(ValidationError::SiblingOrder(id));
                }
            }
            prev = Some(fc);
        }
    }
    if let Some(orphan) = claimed.iter().skip(1).position(|&c| !c) {
        return Err(ValidationError::UnreachableNode(orphan as NodeId + 1));
    }
    Ok(())
}

/// Validates a flat serving-layout tree against the text.
///
/// The flat arena is checked on its own terms first
/// ([`validate_flat_structure`]: bounds, non-overlap, reachability, sibling
/// order, leaf/meta consistency), then thawed — the id-preserving inverse of
/// the freeze — and run through [`validate_suffix_tree`], so both the layout
/// encoding and the text-backed suffix-tree invariants are certified.
pub fn validate_flat_tree(
    tree: &FlatTree,
    text: &[u8],
    expected_leaves: Option<usize>,
) -> Result<(), ValidationError> {
    validate_flat_structure(tree)?;
    validate_suffix_tree(&tree.thaw(), text, expected_leaves)
}

/// Validates a partitioned suffix tree: every sub-tree is well formed, every
/// leaf of partition `p` is an occurrence of `p`, and across all partitions
/// the leaves are exactly the suffixes `0..text.len()`.
pub fn validate_partitioned(
    tree: &PartitionedSuffixTree,
    text: &[u8],
) -> Result<(), ValidationError> {
    let mut all: BTreeSet<u32> = BTreeSet::new();
    for part in tree.partitions() {
        validate_flat_tree(&part.tree, text, None)?;
        for leaf in part.tree.lexicographic_suffixes() {
            if !text[leaf as usize..].starts_with(&part.prefix) {
                return Err(ValidationError::WrongSuffix { leaf: 0, suffix: leaf });
            }
            all.insert(leaf);
        }
    }
    if all.len() != text.len()
        || all.iter().ne((0..text.len() as u32).collect::<BTreeSet<_>>().iter())
    {
        return Err(ValidationError::WrongLeafSet { found: all.len(), expected: text.len() });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_tree;

    #[test]
    fn naive_tree_passes() {
        let text = b"mississippi\0";
        let t = naive_suffix_tree(text);
        validate_suffix_tree(&t, text, Some(text.len())).unwrap();
    }

    #[test]
    fn detects_wrong_leaf_count() {
        let text = b"abc\0";
        let t = naive_suffix_tree(text);
        let err = validate_suffix_tree(&t, text, Some(99)).unwrap_err();
        assert!(matches!(err, ValidationError::WrongLeafSet { found: 4, expected: 99 }));
    }

    #[test]
    fn detects_unary_internal_node() {
        let text = b"ab\0";
        let mut t = SuffixTree::new(3);
        let internal = t.add_internal(t.root(), 0, 1, b'a');
        t.add_leaf(internal, 1, 3, b'b', 0);
        let err = validate_suffix_tree(&t, text, None).unwrap_err();
        assert!(matches!(err, ValidationError::UnaryInternalNode(_)));
    }

    #[test]
    fn detects_wrong_suffix_label() {
        let text = b"ab\0";
        let mut t = SuffixTree::new(3);
        // Claims to be suffix 1 ("b$") but spells "ab$".
        t.add_leaf(t.root(), 0, 3, b'a', 1);
        let err = validate_suffix_tree(&t, text, None).unwrap_err();
        assert!(matches!(err, ValidationError::WrongSuffix { .. }));
    }

    #[test]
    fn detects_first_char_mismatch() {
        let text = b"ab\0";
        let mut t = SuffixTree::new(3);
        t.add_leaf(t.root(), 0, 3, b'x', 0);
        let err = validate_suffix_tree(&t, text, None).unwrap_err();
        assert!(matches!(err, ValidationError::FirstCharMismatch(_)));
    }

    #[test]
    fn detects_out_of_bounds_edge() {
        let text = b"ab\0";
        let mut t = SuffixTree::new(5); // lies about text length
        t.add_leaf(t.root(), 0, 5, b'a', 0);
        let err = validate_suffix_tree(&t, text, None).unwrap_err();
        assert!(matches!(err, ValidationError::EdgeOutOfBounds(_)));
    }

    #[test]
    fn error_messages_render() {
        let e = ValidationError::WrongLeafSet { found: 1, expected: 2 };
        assert!(e.to_string().contains("expected 2"));
    }
}
