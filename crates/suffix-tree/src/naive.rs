//! Naive `O(n²)` reference construction.
//!
//! This builder inserts every suffix by walking from the root and comparing
//! characters. It is far too slow for real inputs but its simplicity makes it
//! the correctness oracle for every other construction algorithm in this
//! repository (ERA, WaveFront, B²ST, Trellis, Ukkonen).

use crate::tree::SuffixTree;

/// Builds the suffix tree of `text` (which must end with the unique terminal
/// byte `0`) by naive repeated insertion.
///
/// # Panics
///
/// Panics if the text is empty or not terminated; the oracle is only used on
/// inputs produced by the validated stores.
pub fn naive_suffix_tree(text: &[u8]) -> SuffixTree {
    assert!(!text.is_empty(), "text must not be empty");
    // era-check: allow(unwrap): emptiness asserted on the same line
    assert_eq!(*text.last().unwrap(), 0, "text must end with the terminal byte");
    let n = text.len() as u32;
    let mut tree = SuffixTree::with_capacity(text.len(), 2 * text.len());

    for suffix in 0..n {
        insert_suffix(&mut tree, text, suffix);
    }
    tree
}

/// Inserts one suffix into a partially built tree by top-down comparison.
/// Also used by the WaveFront and Trellis baselines, which insert suffixes
/// one at a time (that per-insertion traversal is exactly the CPU overhead
/// the paper attributes to WaveFront).
pub fn insert_suffix(tree: &mut SuffixTree, text: &[u8], suffix: u32) {
    let n = text.len() as u32;
    let mut node = tree.root();
    let mut pos = suffix; // next text position of the suffix still to match

    loop {
        debug_assert!(pos < n);
        let c = text[pos as usize];
        match tree.child_starting_with(node, c) {
            None => {
                tree.add_leaf(node, pos, n, c, suffix);
                return;
            }
            Some(child) => {
                let (start, end) = {
                    let ch = tree.node(child);
                    (ch.start, ch.end)
                };
                // Match along the edge label.
                let mut k = 0u32;
                while start + k < end
                    && pos + k < n
                    && text[(start + k) as usize] == text[(pos + k) as usize]
                {
                    k += 1;
                }
                if start + k == end {
                    // Whole edge matched; descend.
                    node = child;
                    pos += k;
                    // Because the terminal is unique, a suffix can never end
                    // exactly at an existing internal node or leaf.
                    debug_assert!(pos < n);
                } else {
                    // Mismatch inside the edge: split and attach the new leaf.
                    let mid = tree.split_edge(child, k, text[(start + k) as usize]);
                    tree.add_leaf(mid, pos + k, n, text[(pos + k) as usize], suffix);
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate_suffix_tree;

    #[test]
    fn banana_has_expected_shape() {
        let text = b"banana\0";
        let t = naive_suffix_tree(text);
        assert_eq!(t.leaf_count(), 7);
        // Suffix array of banana$: $, a$, ana$, anana$, banana$, na$, nana$
        assert_eq!(t.lexicographic_suffixes(), vec![6, 5, 3, 1, 0, 4, 2]);
        validate_suffix_tree(&t, text, Some(text.len())).unwrap();
    }

    #[test]
    fn paper_example_string() {
        // The running example of the paper (Figure 2).
        let mut text = b"TGGTGGTGGTGCGGTGATGGTGC".to_vec();
        text.push(0);
        let t = naive_suffix_tree(&text);
        assert_eq!(t.leaf_count(), text.len());
        validate_suffix_tree(&t, &text, Some(text.len())).unwrap();
        // Table 1: the suffixes sharing the S-prefix "TG" occur at these
        // offsets.
        let tg_positions: Vec<u32> = (0..text.len() - 1)
            .filter(|&i| text[i..].starts_with(b"TG"))
            .map(|i| i as u32)
            .collect();
        assert_eq!(tg_positions, vec![0, 3, 6, 9, 14, 17, 20]);
    }

    #[test]
    fn repetitive_string() {
        let mut text = vec![b'a'; 50];
        text.push(0);
        let t = naive_suffix_tree(&text);
        assert_eq!(t.leaf_count(), 51);
        validate_suffix_tree(&t, &text, Some(text.len())).unwrap();
    }

    #[test]
    fn single_terminal() {
        let t = naive_suffix_tree(&[0]);
        assert_eq!(t.leaf_count(), 1);
        validate_suffix_tree(&t, &[0], Some(1)).unwrap();
    }

    #[test]
    #[should_panic(expected = "terminal")]
    fn unterminated_text_panics() {
        naive_suffix_tree(b"abc");
    }
}
