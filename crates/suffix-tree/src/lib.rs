//! # era-suffix-tree
//!
//! Suffix-tree substrate for the ERA reproduction (Mansour et al., PVLDB 2011).
//!
//! The crate contains everything about the *data structure* that is shared by
//! ERA and the baseline construction algorithms:
//!
//! * [`SuffixTree`] — the mutable *construction* form: an arena of nodes
//!   whose edges store `(start, end)` offsets into the text, exactly as
//!   described in §2 of the paper; internal nodes own sorted child vectors so
//!   `BuildSubTree` can insert and split edges cheaply.
//! * [`FlatTree`] ([`layout`]) — the frozen *serving* form: one contiguous
//!   arena of 16-byte records (vs ~3.5× that for the construction form),
//!   children packed adjacently in `first_char` order behind a
//!   `(children_start, children_len)` range, leaf/internal a tag bit. Every
//!   finished sub-tree is frozen into this layout, so the query hot path
//!   binary-searches adjacent cache lines instead of chasing per-node heap
//!   vectors.
//! * [`assemble::assemble_from_sorted`] — the stack-based batch assembly of a
//!   tree from lexicographically sorted leaves plus branching information;
//!   this is the paper's `BuildSubTree` and is also how B²ST turns a merged
//!   suffix array + LCP stream into a tree.
//! * [`naive`] — a simple `O(n²)` reference builder used as the correctness
//!   oracle throughout the test suites.
//! * [`query`] — substring search, counting, longest repeated substring,
//!   longest common substring and lexicographic suffix enumeration, on both
//!   tree forms. Matching is generic over [`TextSource`]: the `try_*`
//!   variants resolve edge labels through a byte slice *or* any raw/packed
//!   [`StringStore`](era_string_store::StringStore) via
//!   [`StoreTextSource`](era_string_store::StoreTextSource), so queries can
//!   be served without materializing the text.
//! * [`partitioned`] — the final ERA output: a small packed-edge trie over
//!   the variable-length S-prefixes with one frozen sub-tree per prefix
//!   (Fig. 3).
//! * [`validate`] — structural invariant checking used by tests and examples.
//! * [`serialize`] — a compact little-endian binary format for storing
//!   sub-trees on disk: `ERAFLAT1` (16 bytes/node, the serving default) plus
//!   the legacy `ERASTRE1` construction-form layout, which still loads.
//! * [`catalog`] — the `ERACAT1` single-file index container: text segment,
//!   contiguous `ERAFLAT1` group segments and a checksummed footer/TOC,
//!   committed atomically (write temp → fsync → fsync TOC → rename → dir
//!   fsync) through the [`Vfs`](era_string_store::Vfs) durability seam, with
//!   per-group generation numbers as the seam for group-granular incremental
//!   replace. The crash-matrix harness in `era-check` proves every fault
//!   point of a save yields exactly the old or the new generation.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod assemble;
pub mod catalog;
pub mod layout;
pub mod naive;
pub mod node;
pub mod partitioned;
pub mod query;
pub mod serialize;
pub mod stats;
pub mod tree;
pub mod validate;

pub use assemble::assemble_from_sorted;
pub use catalog::{
    commit_catalog, encode_catalog, parse_catalog, save_catalog, write_file_durable, Catalog,
    CatalogGroup, CatalogText, CommitProtocol, EncodedCatalog, TextSegment,
};
pub use layout::{FlatNode, FlatPartition, FlatTree, FLAT_NODE_BYTES};
pub use naive::naive_suffix_tree;
pub use node::{Node, NodeData, NodeId, NO_NODE};
pub use partitioned::{Partition, PartitionedSuffixTree, PrefixTrie};
pub use query::MatchResult;
pub use stats::TreeStats;
pub use tree::SuffixTree;

// Re-exported so query-layer callers don't need a direct `era-string-store`
// dependency to name the text abstraction the `try_*` methods traverse.
pub use era_string_store::{StoreTextSource, TextSource};
pub use validate::{
    validate_flat_structure, validate_flat_tree, validate_partitioned, validate_suffix_tree,
    ValidationError,
};
