//! # era-suffix-tree
//!
//! Suffix-tree substrate for the ERA reproduction (Mansour et al., PVLDB 2011).
//!
//! The crate contains everything about the *data structure* that is shared by
//! ERA and the baseline construction algorithms:
//!
//! * [`SuffixTree`] — a flat arena representation (edges store `(start, end)`
//!   offsets into the text, exactly as described in §2 of the paper).
//! * [`assemble::assemble_from_sorted`] — the stack-based batch assembly of a
//!   tree from lexicographically sorted leaves plus branching information;
//!   this is the paper's `BuildSubTree` and is also how B²ST turns a merged
//!   suffix array + LCP stream into a tree.
//! * [`naive`] — a simple `O(n²)` reference builder used as the correctness
//!   oracle throughout the test suites.
//! * [`query`] — substring search, counting, longest repeated substring,
//!   longest common substring and lexicographic suffix enumeration. Matching
//!   is generic over [`TextSource`]: the `try_*` variants resolve edge labels
//!   through a byte slice *or* any raw/packed
//!   [`StringStore`](era_string_store::StringStore) via
//!   [`StoreTextSource`](era_string_store::StoreTextSource), so queries can
//!   be served without materializing the text.
//! * [`partitioned`] — the final ERA output: a small trie over the
//!   variable-length S-prefixes with one sub-tree per prefix (Fig. 3).
//! * [`validate`] — structural invariant checking used by tests and examples.
//! * [`serialize`] — a compact little-endian binary format for storing
//!   sub-trees on disk.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod assemble;
pub mod naive;
pub mod node;
pub mod partitioned;
pub mod query;
pub mod serialize;
pub mod stats;
pub mod tree;
pub mod validate;

pub use assemble::assemble_from_sorted;
pub use naive::naive_suffix_tree;
pub use node::{Node, NodeData, NodeId, NO_NODE};
pub use partitioned::{Partition, PartitionedSuffixTree, PrefixTrie};
pub use query::MatchResult;
pub use stats::TreeStats;
pub use tree::SuffixTree;

// Re-exported so query-layer callers don't need a direct `era-string-store`
// dependency to name the text abstraction the `try_*` methods traverse.
pub use era_string_store::{StoreTextSource, TextSource};
pub use validate::{validate_partitioned, validate_suffix_tree, ValidationError};
