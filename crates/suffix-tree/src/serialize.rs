//! Compact binary serialization of suffix (sub-)trees.
//!
//! ERA and the disk-based baselines write finished sub-trees to disk as they
//! are produced (the human-genome tree is ~26× the input, so it cannot stay in
//! memory). The format is a simple little-endian layout with a magic header —
//! no external codec dependencies.
//!
//! Two tree formats exist:
//!
//! * `ERAFLAT1` — the flat serving layout ([`FlatTree`]): a fixed 16-byte
//!   record per node, written verbatim. This is what
//!   [`PartitionedSuffixTree::save_to_dir`] produces; loading is a single
//!   bulk read with no per-node pointer rebuilding.
//! * `ERASTRE1` — the legacy construction-form layout ([`SuffixTree`]) with
//!   explicit parent pointers and child lists. Still written by
//!   [`write_tree`] for construction-side tooling, and still accepted by
//!   [`PartitionedSuffixTree::load_from_dir`] (legacy partitions are frozen
//!   on load).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use era_string_store::Vfs;

use crate::catalog::write_file_durable;
use crate::layout::{FlatNode, FlatPartition, FlatTree};
use crate::node::{Node, NodeData, NodeId};
use crate::partitioned::PartitionedSuffixTree;
use crate::tree::SuffixTree;

const TREE_MAGIC: &[u8; 8] = b"ERASTRE1";
const FLAT_MAGIC: &[u8; 8] = b"ERAFLAT1";
const PART_MAGIC: &[u8; 8] = b"ERAPART1";

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

// era-check: source
fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_u8<W: Write>(w: &mut W, v: u8) -> io::Result<()> {
    w.write_all(&[v])
}

// era-check: source
fn read_u8<R: Read>(r: &mut R) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Ceiling on speculative preallocation from header-declared counts. A
/// hostile 8-byte header may *claim* any element count, but it only gets the
/// memory as the corresponding bytes actually arrive — `Vec::push` grows
/// past this cap organically, and a short file errors out in `read_exact`
/// long before.
pub(crate) const MAX_PREALLOC: usize = 1 << 20;

/// Ceiling on a manifest partition-prefix length. Partition prefixes are a
/// handful of symbols by construction; a manifest claiming more is hostile
/// or corrupt and is rejected rather than allocated.
pub(crate) const MAX_PREFIX_LEN: usize = 1 << 10;

/// Writes a construction-form tree to any writer (`ERASTRE1`).
pub fn write_tree<W: Write>(w: &mut W, tree: &SuffixTree) -> io::Result<()> {
    w.write_all(TREE_MAGIC)?;
    write_u32(w, tree.text_len() as u32)?;
    write_u32(w, tree.node_count() as u32)?;
    for id in tree.node_ids() {
        let n = tree.node(id);
        write_u32(w, n.start)?;
        write_u32(w, n.end)?;
        write_u32(w, n.parent)?;
        write_u8(w, n.first_char)?;
        match &n.data {
            NodeData::Leaf { suffix } => {
                write_u8(w, 1)?;
                write_u32(w, *suffix)?;
            }
            NodeData::Internal { children } => {
                write_u8(w, 0)?;
                write_u32(w, children.len() as u32)?;
                for &c in children {
                    write_u32(w, c)?;
                }
            }
        }
    }
    Ok(())
}

/// Reads a construction-form tree previously written with [`write_tree`].
pub fn read_tree<R: Read>(r: &mut R) -> io::Result<SuffixTree> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != TREE_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ERA suffix tree file"));
    }
    read_tree_body(r)
}

/// Reads the `ERASTRE1` body after the magic has been consumed.
fn read_tree_body<R: Read>(r: &mut R) -> io::Result<SuffixTree> {
    let text_len = read_u32(r)? as usize;
    let node_count = read_u32(r)? as usize;
    let mut tree =
        SuffixTree::with_capacity(text_len.min(MAX_PREALLOC), node_count.min(MAX_PREALLOC));
    for id in 0..node_count as NodeId {
        let start = read_u32(r)?;
        let end = read_u32(r)?;
        let parent = read_u32(r)?;
        let first_char = read_u8(r)?;
        let tag = read_u8(r)?;
        let data = if tag == 1 {
            NodeData::Leaf { suffix: read_u32(r)? }
        } else {
            let len = read_u32(r)? as usize;
            let mut children = Vec::with_capacity(len.min(MAX_PREALLOC));
            for _ in 0..len {
                children.push(read_u32(r)?);
            }
            NodeData::Internal { children }
        };
        let node = Node { start, end, parent, first_char, data };
        if id == 0 {
            *tree.node_mut(0) = node;
        } else {
            tree.push_raw(node);
        }
    }
    Ok(tree)
}

/// Writes a flat serving-layout tree to any writer (`ERAFLAT1`): the magic,
/// the text length, the node count, then the fixed 16-byte records verbatim.
pub fn write_flat_tree<W: Write>(w: &mut W, tree: &FlatTree) -> io::Result<()> {
    w.write_all(FLAT_MAGIC)?;
    write_u32(w, tree.text_len() as u32)?;
    write_u32(w, tree.node_count() as u32)?;
    for id in tree.node_ids() {
        let (start, end, payload, meta) = tree.raw_node(id);
        write_u32(w, start)?;
        write_u32(w, end)?;
        write_u32(w, payload)?;
        write_u32(w, meta)?;
    }
    Ok(())
}

/// Reads a flat tree previously written with [`write_flat_tree`], running the
/// full structural validation pass ([`crate::validate::validate_flat_structure`])
/// on the untrusted bytes: child-range bounds and non-overlap, reachability
/// from the root, sibling ordering and leaf/meta-word consistency.
pub fn read_flat_tree<R: Read>(r: &mut R) -> io::Result<FlatTree> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != FLAT_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ERA flat tree file"));
    }
    read_flat_tree_body(r)
}

/// Reads the `ERAFLAT1` body after the magic has been consumed.
fn read_flat_tree_body<R: Read>(r: &mut R) -> io::Result<FlatTree> {
    let text_len = read_u32(r)?;
    let node_count = read_u32(r)? as usize;
    if node_count == 0 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "flat tree without a root"));
    }
    let mut nodes = Vec::with_capacity(node_count.min(MAX_PREALLOC));
    for _ in 0..node_count {
        let start = read_u32(r)?;
        let end = read_u32(r)?;
        let payload = read_u32(r)?;
        let meta = read_u32(r)?;
        nodes.push(FlatNode::from_raw(start, end, payload, meta));
    }
    let tree = FlatTree::from_raw_parts(text_len, nodes);
    // The cheap structural subset of `validate_flat_tree` is always on for
    // untrusted bytes: a corrupt part file must error at load time, not
    // serve wrong answers (or panic) at query time. The text-backed deep
    // checks stay behind `EraConfig::paranoid` / `era-check fsck --deep`.
    crate::validate::validate_flat_structure(&tree).map_err(|e| {
        io::Error::new(io::ErrorKind::InvalidData, format!("corrupt flat tree: {e}"))
    })?;
    Ok(tree)
}

impl SuffixTree {
    /// Appends a fully specified node without linking it to a parent —
    /// only used by deserialization, which restores links verbatim.
    pub(crate) fn push_raw(&mut self, node: Node) -> NodeId {
        let id = self.node_count() as NodeId;
        self.push_node_for_deserialization(node);
        id
    }

    /// Saves the tree to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write_tree(&mut w, self)?;
        w.flush()
    }

    /// Loads a tree from a file.
    pub fn load(path: impl AsRef<Path>) -> io::Result<SuffixTree> {
        let mut r = BufReader::new(File::open(path)?);
        read_tree(&mut r)
    }

    /// Serialized size in bytes (without writing anywhere).
    pub fn serialized_size(&self) -> usize {
        let mut counter = CountingWriter::default();
        // era-check: allow(unwrap): counting writer never errors
        write_tree(&mut counter, self).expect("counting writer cannot fail");
        counter.bytes
    }
}

impl FlatTree {
    /// Saves the flat tree to a file.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut w = BufWriter::new(File::create(path)?);
        write_flat_tree(&mut w, self)?;
        w.flush()
    }

    /// Loads a flat tree from a file. Accepts both formats: `ERAFLAT1` is
    /// read verbatim, a legacy `ERASTRE1` file is frozen on load.
    pub fn load(path: impl AsRef<Path>) -> io::Result<FlatTree> {
        let mut r = BufReader::new(File::open(path)?);
        read_any_tree(&mut r)
    }

    /// Serialized size in bytes (without writing anywhere): a fixed header
    /// plus 16 bytes per node.
    pub fn serialized_size(&self) -> usize {
        8 + 4 + 4 + self.node_count() * 16
    }
}

/// Reads a tree in either format, returning the flat serving form: an
/// `ERAFLAT1` payload verbatim, an `ERASTRE1` payload frozen after loading.
fn read_any_tree<R: Read>(r: &mut R) -> io::Result<FlatTree> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    match &magic {
        m if m == FLAT_MAGIC => read_flat_tree_body(r),
        m if m == TREE_MAGIC => Ok(FlatTree::freeze(&read_tree_body(r)?)),
        _ => Err(io::Error::new(io::ErrorKind::InvalidData, "not an ERA tree file")),
    }
}

#[derive(Default)]
struct CountingWriter {
    bytes: usize,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.bytes += buf.len();
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl PartitionedSuffixTree {
    /// Saves the whole index into `dir`: a manifest plus one flat
    /// (`ERAFLAT1`) file per partition sub-tree.
    ///
    /// Every file is committed with write-temp → fsync → rename and the
    /// directory is fsynced at the end, so a crash mid-save never leaves a
    /// half-written artifact under a final name. For whole-index atomicity
    /// use the single-file catalog ([`crate::catalog`]) instead.
    pub fn save_to_dir(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let vfs = era_string_store::StdVfs;
        self.save_to_dir_with(dir, &vfs)?;
        era_string_store::Vfs::sync_dir(&vfs, dir)
    }

    /// [`Self::save_to_dir`] through an explicit [`Vfs`] seam: partition
    /// files first, the manifest — the scattered layout's commit point —
    /// last. The caller owns the final [`Vfs::sync_dir`] (and, with
    /// `StdVfs`, must have created `dir`), so several artifacts can share
    /// one directory fsync.
    pub fn save_to_dir_with(&self, dir: &Path, vfs: &dyn Vfs) -> io::Result<()> {
        for (i, part) in self.partitions().iter().enumerate() {
            let mut seg = Vec::with_capacity(part.tree.serialized_size());
            write_flat_tree(&mut seg, &part.tree)?;
            write_file_durable(vfs, &dir.join(format!("part-{i:05}.st")), &seg)?;
        }
        let mut manifest = Vec::new();
        manifest.extend_from_slice(PART_MAGIC);
        write_u32(&mut manifest, self.text_len() as u32)?;
        write_u32(&mut manifest, self.partitions().len() as u32)?;
        for part in self.partitions() {
            write_u32(&mut manifest, part.prefix.len() as u32)?;
            manifest.extend_from_slice(&part.prefix);
        }
        write_file_durable(vfs, &dir.join("manifest.era"), &manifest)
    }

    /// Loads an index previously written by [`Self::save_to_dir`].
    ///
    /// Partition files written by older versions in the construction-form
    /// (`ERASTRE1`) layout load transparently — they are frozen into the flat
    /// serving form as they are read.
    pub fn load_from_dir(dir: impl AsRef<Path>) -> io::Result<PartitionedSuffixTree> {
        let dir = dir.as_ref();
        let mut manifest = BufReader::new(File::open(dir.join("manifest.era"))?);
        let mut magic = [0u8; 8];
        manifest.read_exact(&mut magic)?;
        if &magic != PART_MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an ERA index manifest"));
        }
        let text_len = read_u32(&mut manifest)? as usize;
        let count = read_u32(&mut manifest)? as usize;
        let mut partitions = Vec::with_capacity(count.min(MAX_PREALLOC));
        for i in 0..count {
            let plen = read_u32(&mut manifest)? as usize;
            if plen > MAX_PREFIX_LEN {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "manifest claims a {plen}-byte partition prefix (max {MAX_PREFIX_LEN})"
                    ),
                ));
            }
            let mut prefix = vec![0u8; plen];
            manifest.read_exact(&mut prefix)?;
            let tree = FlatTree::load(dir.join(format!("part-{i:05}.st")))?;
            partitions.push(FlatPartition { prefix, tree });
        }
        Ok(PartitionedSuffixTree::from_flat(text_len, partitions))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_tree;
    use crate::validate::validate_suffix_tree;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("era-serialize-{}-{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn tree_roundtrip_in_memory() {
        let text = b"mississippi\0";
        let tree = naive_suffix_tree(text);
        let mut buf = Vec::new();
        write_tree(&mut buf, &tree).unwrap();
        let back = read_tree(&mut buf.as_slice()).unwrap();
        assert_eq!(tree, back);
        validate_suffix_tree(&back, text, Some(text.len())).unwrap();
        assert_eq!(tree.serialized_size(), buf.len());
    }

    #[test]
    fn flat_tree_roundtrip_in_memory() {
        let text = b"mississippi\0";
        let flat = FlatTree::freeze(&naive_suffix_tree(text));
        let mut buf = Vec::new();
        write_flat_tree(&mut buf, &flat).unwrap();
        let back = read_flat_tree(&mut buf.as_slice()).unwrap();
        assert_eq!(flat, back);
        assert_eq!(flat.serialized_size(), buf.len());
        validate_suffix_tree(&back.thaw(), text, Some(text.len())).unwrap();
    }

    #[test]
    fn tree_roundtrip_on_disk() {
        let dir = temp_dir("tree");
        let text = b"abracadabra\0";
        let tree = naive_suffix_tree(text);
        let path = dir.join("tree.st");
        tree.save(&path).unwrap();
        let back = SuffixTree::load(&path).unwrap();
        assert_eq!(tree, back);
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn flat_load_accepts_legacy_format() {
        let dir = temp_dir("flat-legacy");
        let text = b"abracadabra\0";
        let tree = naive_suffix_tree(text);
        let path = dir.join("legacy.st");
        tree.save(&path).unwrap(); // construction-form ERASTRE1 bytes
        let back = FlatTree::load(&path).unwrap();
        assert_eq!(back, FlatTree::freeze(&tree));
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn rejects_bad_magic() {
        let data = b"NOTATREExxxxxxxxxxxx".to_vec();
        assert!(read_tree(&mut data.as_slice()).is_err());
        assert!(read_flat_tree(&mut data.as_slice()).is_err());
        assert!(read_any_tree(&mut data.as_slice()).is_err());
    }

    #[test]
    fn rejects_out_of_bounds_child_range() {
        let flat = FlatTree::freeze(&naive_suffix_tree(b"ab\0"));
        let mut buf = Vec::new();
        write_flat_tree(&mut buf, &flat).unwrap();
        // Corrupt the root's child count (meta word of node 0) to overflow
        // the arena.
        let meta_off = 8 + 4 + 4 + 12;
        buf[meta_off..meta_off + 4].copy_from_slice(&1000u32.to_le_bytes());
        assert!(read_flat_tree(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn partitioned_roundtrip() {
        let text = b"GATTACAGATTACA\0";
        let full = naive_suffix_tree(text);
        let index = PartitionedSuffixTree::single(text.len(), full);
        let dir = temp_dir("part");
        index.save_to_dir(&dir).unwrap();
        let back = PartitionedSuffixTree::load_from_dir(&dir).unwrap();
        assert_eq!(index, back);
        assert_eq!(index.leaf_count(), back.leaf_count());
        assert_eq!(index.find_all(text, b"GATTACA"), back.find_all(text, b"GATTACA"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn partitioned_load_accepts_legacy_partition_files() {
        // Simulate an index saved by an older version: same manifest, but the
        // partition files carry construction-form ERASTRE1 bytes.
        let text = b"GATTACAGATTACA\0";
        let full = naive_suffix_tree(text);
        let index = PartitionedSuffixTree::single(text.len(), full.clone());
        let dir = temp_dir("part-legacy");
        index.save_to_dir(&dir).unwrap();
        full.save(dir.join("part-00000.st")).unwrap();
        let back = PartitionedSuffixTree::load_from_dir(&dir).unwrap();
        assert_eq!(index, back);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
