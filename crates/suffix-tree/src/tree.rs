//! The arena suffix tree.

use crate::node::{Node, NodeData, NodeId, NO_NODE};
use crate::stats::TreeStats;

/// A suffix tree (or suffix sub-tree) stored as a flat arena.
///
/// Edge labels are `(start, end)` offsets into the input text, so the
/// structure itself never stores string data — matching the `O(n)` space
/// representation described in §2 of the paper. Node 0 is always the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SuffixTree {
    text_len: u32,
    nodes: Vec<Node>,
}

impl SuffixTree {
    /// Creates an empty tree (only the root) for a text of `text_len` bytes
    /// (including the terminal).
    pub fn new(text_len: usize) -> Self {
        SuffixTree { text_len: text_len as u32, nodes: vec![Node::root()] }
    }

    /// Creates an empty tree and pre-allocates space for `capacity` nodes.
    pub fn with_capacity(text_len: usize, capacity: usize) -> Self {
        let mut nodes = Vec::with_capacity(capacity.max(1));
        nodes.push(Node::root());
        SuffixTree { text_len: text_len as u32, nodes }
    }

    /// The root node id (always 0).
    pub fn root(&self) -> NodeId {
        0
    }

    /// Length of the indexed text (including the terminal).
    pub fn text_len(&self) -> usize {
        self.text_len as usize
    }

    /// Total number of nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Borrow a node.
    // era-check: allow(panic-path): node ids are handed out by this arena
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id as usize]
    }

    /// Mutably borrow a node.
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id as usize]
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        0..self.nodes.len() as NodeId
    }

    /// Children of `id` (empty for leaves).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        self.node(id).children()
    }

    /// Looks up the child of `id` whose incoming edge starts with `c`.
    // era-check: allow(panic-path): binary_search returns an in-range child index
    pub fn child_starting_with(&self, id: NodeId, c: u8) -> Option<NodeId> {
        let children = self.children(id);
        children.binary_search_by_key(&c, |&ch| self.node(ch).first_char).ok().map(|i| children[i])
    }

    /// Number of leaves.
    pub fn leaf_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.is_leaf()).count()
    }

    /// Number of internal nodes (including the root).
    pub fn internal_count(&self) -> usize {
        self.nodes.len() - self.leaf_count()
    }

    /// Adds a leaf under `parent` with edge label `text[start..end]`
    /// representing the suffix starting at `suffix`.
    ///
    /// `first_char` must equal `text[start]`.
    pub fn add_leaf(
        &mut self,
        parent: NodeId,
        start: u32,
        end: u32,
        first_char: u8,
        suffix: u32,
    ) -> NodeId {
        let id = self.push(Node::leaf(parent, start, end, first_char, suffix));
        self.attach(parent, id);
        id
    }

    /// Adds an internal node under `parent` with edge label `text[start..end]`.
    pub fn add_internal(&mut self, parent: NodeId, start: u32, end: u32, first_char: u8) -> NodeId {
        let id = self.push(Node::internal(parent, start, end, first_char));
        self.attach(parent, id);
        id
    }

    /// Splits the incoming edge of `child` after `split_len` symbols,
    /// inserting a new internal node between `child` and its parent.
    ///
    /// `child_first_after_split` must be the text character at
    /// `child.start + split_len`; passing it explicitly keeps batch assembly
    /// free of string accesses (the character is available as `c1` in the
    /// paper's `B` array).
    ///
    /// Returns the id of the new internal node.
    pub fn split_edge(
        &mut self,
        child: NodeId,
        split_len: u32,
        child_first_after_split: u8,
    ) -> NodeId {
        assert!(split_len > 0, "split length must be positive");
        let (start, end, parent, first_char) = {
            let c = self.node(child);
            assert!(
                split_len < c.edge_len(),
                "split length {} must be shorter than the edge ({})",
                split_len,
                c.edge_len()
            );
            (c.start, c.end, c.parent, c.first_char)
        };
        let mid_id = self.push(Node::internal(parent, start, start + split_len, first_char));
        // Re-wire the parent: replace `child` with `mid_id` in place (ordering
        // is unchanged because the first character is the same).
        {
            let p = self.node_mut(parent);
            if let NodeData::Internal { children } = &mut p.data {
                // era-check: allow(unwrap): caller guarantees the child is present
                let slot = children.iter().position(|&c| c == child).expect("child present");
                children[slot] = mid_id;
            } else {
                panic!("parent of a split edge must be internal");
            }
        }
        // Re-point the child below the new node.
        {
            let c = self.node_mut(child);
            c.parent = mid_id;
            c.start = start + split_len;
            c.first_char = child_first_after_split;
            debug_assert!(c.start < end);
        }
        // Attach the child to the new internal node.
        if let NodeData::Internal { children } = &mut self.node_mut(mid_id).data {
            children.push(child);
        }
        mid_id
    }

    /// Appends a fully specified node without attaching it to a parent.
    /// Only used by deserialization, which restores all links verbatim.
    pub(crate) fn push_node_for_deserialization(&mut self, node: Node) {
        self.nodes.push(node);
    }

    fn push(&mut self, node: Node) -> NodeId {
        let id = self.nodes.len() as NodeId;
        assert!(id != NO_NODE, "arena overflow");
        self.nodes.push(node);
        id
    }

    fn attach(&mut self, parent: NodeId, child: NodeId) {
        let first = self.node(child).first_char;
        let pos = {
            let children = self.children(parent);
            children
                .binary_search_by_key(&first, |&ch| self.node(ch).first_char)
                .unwrap_or_else(|insert_at| insert_at)
        };
        match &mut self.node_mut(parent).data {
            NodeData::Internal { children } => children.insert(pos, child),
            NodeData::Leaf { .. } => panic!("cannot attach a child to a leaf"),
        }
    }

    /// String depth (number of symbols from the root) of `id`.
    pub fn string_depth(&self, id: NodeId) -> u32 {
        let mut depth = 0;
        let mut cur = id;
        while cur != self.root() {
            let n = self.node(cur);
            depth += n.edge_len();
            cur = n.parent;
        }
        depth
    }

    /// The path label of `id` extracted from `text`.
    pub fn path_label(&self, id: NodeId, text: &[u8]) -> Vec<u8> {
        let mut parts: Vec<(u32, u32)> = Vec::new();
        let mut cur = id;
        while cur != self.root() {
            let n = self.node(cur);
            parts.push((n.start, n.end));
            cur = n.parent;
        }
        let mut label = Vec::new();
        for &(s, e) in parts.iter().rev() {
            label.extend_from_slice(&text[s as usize..e as usize]);
        }
        label
    }

    /// All leaf suffix offsets below `id` (inclusive), in lexicographic order.
    pub fn leaves_below(&self, id: NodeId) -> Vec<u32> {
        let mut out = Vec::new();
        self.collect_leaves(id, &mut out);
        out
    }

    fn collect_leaves(&self, id: NodeId, out: &mut Vec<u32>) {
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            match &self.node(cur).data {
                NodeData::Leaf { suffix } => out.push(*suffix),
                NodeData::Internal { children } => {
                    // Push in reverse so that lexicographically smallest is
                    // processed first.
                    for &c in children.iter().rev() {
                        stack.push(c);
                    }
                }
            }
        }
    }

    /// Number of leaves at or below `id` (inclusive), without materializing
    /// their suffix offsets.
    ///
    /// Counting queries only need this total; [`Self::leaves_below`] would
    /// allocate one `u32` per occurrence just to `.len()` it, which for a
    /// frequent pattern is a large, pointless allocation on the query hot
    /// path. The traversal is iterative (a small node stack bounded by the
    /// tree's branching, no recursion, no position vector).
    pub fn leaf_count_below(&self, id: NodeId) -> usize {
        let mut count = 0usize;
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            match &self.node(cur).data {
                NodeData::Leaf { .. } => count += 1,
                NodeData::Internal { children } => stack.extend_from_slice(children),
            }
        }
        count
    }

    /// All suffix offsets in lexicographic order (a suffix array of the
    /// indexed suffixes). For a complete suffix tree this is the suffix array
    /// of the text.
    pub fn lexicographic_suffixes(&self) -> Vec<u32> {
        self.leaves_below(self.root())
    }

    /// Depth-first traversal yielding `(node, string_depth)` pairs in
    /// lexicographic order.
    pub fn dfs(&self) -> Vec<(NodeId, u32)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(self.root(), 0u32)];
        while let Some((cur, depth)) = stack.pop() {
            out.push((cur, depth));
            let node = self.node(cur);
            for &c in node.children().iter().rev() {
                stack.push((c, depth + self.node(c).edge_len()));
            }
        }
        out
    }

    /// Structural statistics of the tree.
    pub fn stats(&self) -> TreeStats {
        let mut stats = TreeStats {
            nodes: self.nodes.len(),
            arena_bytes: self.approx_bytes(),
            ..TreeStats::default()
        };
        for (id, depth) in self.dfs() {
            let n = self.node(id);
            if n.is_leaf() {
                stats.leaves += 1;
            } else {
                stats.internal += 1;
                if id != self.root() {
                    stats.max_internal_depth = stats.max_internal_depth.max(depth);
                }
            }
            stats.max_depth = stats.max_depth.max(depth);
        }
        stats
    }

    /// Estimated in-memory size of the tree in bytes.
    pub fn approx_bytes(&self) -> usize {
        let child_slots: usize = self.nodes.iter().map(|n| n.children().len()).sum();
        self.nodes.len() * std::mem::size_of::<Node>() + child_slots * std::mem::size_of::<NodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the suffix tree for "banana$" by hand (Figure 1 of the paper)
    /// and checks navigation helpers.
    fn banana_tree() -> (Vec<u8>, SuffixTree) {
        let text = b"banana\0".to_vec();
        let mut t = SuffixTree::new(text.len());
        let root = t.root();
        // $ leaf (suffix 6)
        t.add_leaf(root, 6, 7, 0, 6);
        // "a" internal node: suffixes 1, 3, 5
        let a = t.add_internal(root, 1, 2, b'a');
        t.add_leaf(a, 6, 7, 0, 5); // a$
        let na = t.add_internal(a, 2, 4, b'n'); // "na"
        t.add_leaf(na, 6, 7, 0, 3); // na$
        t.add_leaf(na, 4, 7, b'n', 1); // nana$
                                       // banana$ leaf
        t.add_leaf(root, 0, 7, b'b', 0);
        // "na" internal: suffixes 2, 4
        let n = t.add_internal(root, 2, 4, b'n');
        t.add_leaf(n, 6, 7, 0, 4);
        t.add_leaf(n, 4, 7, b'n', 2);
        (text, t)
    }

    #[test]
    fn counts_and_navigation() {
        let (_text, t) = banana_tree();
        assert_eq!(t.leaf_count(), 7);
        assert_eq!(t.internal_count(), 4); // root + a + na + n
        assert_eq!(t.node_count(), 11);
        let a = t.child_starting_with(t.root(), b'a').unwrap();
        assert_eq!(t.node(a).first_char, b'a');
        assert!(t.child_starting_with(t.root(), b'z').is_none());
    }

    #[test]
    fn lexicographic_suffixes_match_banana_suffix_array() {
        let (_text, t) = banana_tree();
        // Suffix array of banana$ with $ smallest: $, a$, ana$, anana$, banana$, na$, nana$
        assert_eq!(t.lexicographic_suffixes(), vec![6, 5, 3, 1, 0, 4, 2]);
    }

    #[test]
    fn path_labels_spell_suffixes() {
        let (text, t) = banana_tree();
        for (id, _) in t.dfs() {
            if let Some(s) = t.node(id).suffix() {
                assert_eq!(t.path_label(id, &text), text[s as usize..].to_vec());
            }
        }
    }

    #[test]
    fn string_depth_accumulates() {
        let (_text, t) = banana_tree();
        let a = t.child_starting_with(t.root(), b'a').unwrap();
        let na = t.child_starting_with(a, b'n').unwrap();
        assert_eq!(t.string_depth(a), 1);
        assert_eq!(t.string_depth(na), 3);
    }

    #[test]
    fn split_edge_inserts_internal_node() {
        let text = b"banana\0";
        let mut t = SuffixTree::new(text.len());
        let leaf = t.add_leaf(t.root(), 0, 7, b'b', 0);
        let mid = t.split_edge(leaf, 3, text[3]);
        assert_eq!(t.node(mid).edge_len(), 3);
        assert_eq!(t.node(leaf).parent, mid);
        assert_eq!(t.node(leaf).start, 3);
        assert_eq!(t.node(leaf).first_char, b'a');
        assert_eq!(t.children(t.root()), &[mid]);
        assert_eq!(t.children(mid), &[leaf]);
        assert_eq!(t.string_depth(leaf), 7);
    }

    #[test]
    #[should_panic(expected = "split length")]
    fn split_edge_rejects_full_length() {
        let mut t = SuffixTree::new(7);
        let leaf = t.add_leaf(t.root(), 0, 7, b'b', 0);
        t.split_edge(leaf, 7, 0);
    }

    #[test]
    fn stats_reflect_structure() {
        let (_text, t) = banana_tree();
        let s = t.stats();
        assert_eq!(s.leaves, 7);
        assert_eq!(s.internal, 4);
        assert_eq!(s.max_depth, 7); // banana$
        assert_eq!(s.max_internal_depth, 3); // "ana"... the "na" node below "a"
        assert!(t.approx_bytes() > 0);
    }

    #[test]
    fn children_stay_sorted() {
        let text = b"cba\0";
        let mut t = SuffixTree::new(text.len());
        t.add_leaf(t.root(), 0, 4, b'c', 0);
        t.add_leaf(t.root(), 2, 4, b'a', 2);
        t.add_leaf(t.root(), 1, 4, b'b', 1);
        t.add_leaf(t.root(), 3, 4, 0, 3);
        let firsts: Vec<u8> = t.children(t.root()).iter().map(|&c| t.node(c).first_char).collect();
        assert_eq!(firsts, vec![0, b'a', b'b', b'c']);
    }
}
