//! Arena node representation.

/// Index of a node inside a [`crate::SuffixTree`] arena.
pub type NodeId = u32;

/// Sentinel meaning "no node" (used for the root's parent).
pub const NO_NODE: NodeId = u32::MAX;

/// Payload distinguishing internal nodes from leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// An internal node; `children` is sorted by the first character of each
    /// child's incoming edge label.
    Internal {
        /// Child node ids in lexicographic order of their edge labels.
        children: Vec<NodeId>,
    },
    /// A leaf; `suffix` is the starting offset of the suffix it represents.
    Leaf {
        /// Offset of the suffix spelled by the root-to-leaf path.
        suffix: u32,
    },
}

/// One node of the arena.
///
/// The incoming edge label is `text[start..end]`; for the root both are zero.
/// `first_char` caches `text[start]` so that child lookup does not need the
/// text (important because ERA assembles trees without re-reading the string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// Start offset (inclusive) of the incoming edge label.
    pub start: u32,
    /// End offset (exclusive) of the incoming edge label.
    pub end: u32,
    /// Parent node id (`NO_NODE` for the root).
    pub parent: NodeId,
    /// First character of the incoming edge label (0 for the root).
    pub first_char: u8,
    /// Leaf / internal payload.
    pub data: NodeData,
}

impl Node {
    /// Creates the root node.
    pub fn root() -> Self {
        Node {
            start: 0,
            end: 0,
            parent: NO_NODE,
            first_char: 0,
            data: NodeData::Internal { children: Vec::new() },
        }
    }

    /// Creates a leaf node.
    pub fn leaf(parent: NodeId, start: u32, end: u32, first_char: u8, suffix: u32) -> Self {
        Node { start, end, parent, first_char, data: NodeData::Leaf { suffix } }
    }

    /// Creates an internal (non-root) node.
    pub fn internal(parent: NodeId, start: u32, end: u32, first_char: u8) -> Self {
        Node { start, end, parent, first_char, data: NodeData::Internal { children: Vec::new() } }
    }

    /// Length of the incoming edge label.
    pub fn edge_len(&self) -> u32 {
        self.end - self.start
    }

    /// Whether this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self.data, NodeData::Leaf { .. })
    }

    /// The suffix offset if this node is a leaf.
    pub fn suffix(&self) -> Option<u32> {
        match self.data {
            NodeData::Leaf { suffix } => Some(suffix),
            NodeData::Internal { .. } => None,
        }
    }

    /// The children slice if this node is internal (empty slice for leaves).
    pub fn children(&self) -> &[NodeId] {
        match &self.data {
            NodeData::Internal { children } => children,
            NodeData::Leaf { .. } => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_has_no_parent() {
        let r = Node::root();
        assert_eq!(r.parent, NO_NODE);
        assert_eq!(r.edge_len(), 0);
        assert!(!r.is_leaf());
        assert!(r.children().is_empty());
    }

    #[test]
    fn leaf_reports_suffix() {
        let l = Node::leaf(0, 3, 8, b'G', 3);
        assert!(l.is_leaf());
        assert_eq!(l.suffix(), Some(3));
        assert_eq!(l.edge_len(), 5);
        assert!(l.children().is_empty());
    }

    #[test]
    fn internal_has_children_vec() {
        let n = Node::internal(0, 1, 3, b'A');
        assert!(!n.is_leaf());
        assert_eq!(n.suffix(), None);
        assert_eq!(n.edge_len(), 2);
    }
}
