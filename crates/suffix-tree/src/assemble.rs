//! Stack-based batch assembly of a suffix (sub-)tree from lexicographically
//! sorted leaves and branching information.
//!
//! This is Algorithm `BuildSubTree` of the paper (§4.2.2): given the array `L`
//! of leaf offsets in lexicographic order and, for each adjacent pair, the
//! length of their common prefix (the `offset` component of the `B` triplets)
//! plus the first diverging characters (`c1`, `c2`), the tree is built in one
//! pass with a stack — purely sequential memory access and **no** string reads.
//!
//! The very same routine converts a (suffix array, LCP array) pair into a
//! suffix tree, which is how the B²ST baseline materialises its output.

use crate::node::NodeId;
use crate::tree::SuffixTree;

/// Branching information between two lexicographically adjacent leaves
/// (one entry of the paper's `B` array).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Branching {
    /// First character of the left branch after the common path (`c1`).
    pub left_char: u8,
    /// First character of the right branch after the common path (`c2`).
    pub right_char: u8,
    /// Length of the common path, i.e. the longest common prefix of the two
    /// suffixes (`offset` in the paper's triplet).
    pub lcp: u32,
}

/// Assembles a suffix (sub-)tree from sorted leaves.
///
/// * `text_len` — length of the indexed text including the terminal.
/// * `leaves` — suffix offsets in lexicographic order.
/// * `branching[i - 1]` — relation between `leaves[i - 1]` and `leaves[i]`
///   (so `branching.len() == leaves.len() - 1`; pass an empty slice for a
///   single leaf).
/// * `smallest_first_char` — the first character of the lexicographically
///   smallest suffix (`text[leaves[0]]`). It cannot be derived from the
///   branching data alone and is needed so that child lookups by character
///   work without re-reading the string; ERA passes the first character of
///   the partition prefix, B²ST passes `text[sa[0]]`.
///
/// The resulting tree has exactly `leaves.len()` leaves.
///
/// # Panics
///
/// Panics if `leaves` is empty or the lengths disagree — these are programmer
/// errors in the construction pipeline, not data errors.
pub fn assemble_from_sorted(
    text_len: usize,
    leaves: &[u32],
    branching: &[Branching],
    smallest_first_char: u8,
) -> SuffixTree {
    assert!(!leaves.is_empty(), "cannot assemble a tree without leaves");
    assert_eq!(
        branching.len(),
        leaves.len() - 1,
        "need one branching entry per adjacent leaf pair"
    );

    let n = text_len as u32;
    let mut tree = SuffixTree::with_capacity(text_len, 2 * leaves.len());
    let root = tree.root();

    // Stack of node ids on the path to the most recently added leaf
    // (each entry stands for the edge ending at that node).
    let mut stack: Vec<NodeId> = Vec::with_capacity(64);

    // The first (lexicographically smallest) leaf hangs directly off the root.
    let leaf0 = tree.add_leaf(root, leaves[0], n, smallest_first_char, leaves[0]);
    stack.push(leaf0);
    let mut depth: u32 = n - leaves[0];

    for i in 1..leaves.len() {
        let b = branching[i - 1];
        let offset = b.lcp;

        // Pop edges until the depth of the node *above* the popped edge is at
        // most `offset` (the previous leaf is always deeper than the lcp, so
        // at least one pop happens).
        // era-check: allow(unwrap): stack invariant of the assembly loop
        let mut popped = stack.pop().expect("stack never empty while assembling");
        depth -= tree.node(popped).edge_len();
        while depth > offset {
            // era-check: allow(unwrap): lcp values are bounded by the root sentinel
            popped = stack.pop().expect("lcp cannot reach below the root");
            depth -= tree.node(popped).edge_len();
        }

        let attach_node: NodeId = if depth == offset {
            // Branch at an existing node: the upper endpoint of the popped edge.
            tree.node(popped).parent
        } else {
            // Branch strictly inside the popped edge: split it. The character
            // of the continuing (left) branch right after the split is `c1`.
            let split_len = offset - depth;
            let mid = tree.split_edge(popped, split_len, b.left_char);
            depth += split_len;
            stack.push(mid);
            mid
        };
        debug_assert_eq!(depth, offset);

        // Add the new leaf, labelled with the remainder of its suffix.
        let suffix = leaves[i];
        let start = suffix + offset;
        let leaf = tree.add_leaf(attach_node, start, n, b.right_char, suffix);
        stack.push(leaf);
        depth = offset + (n - start);
    }

    tree
}

/// Converts a (suffix array, LCP array) pair into a suffix tree.
///
/// `lcp[i]` must be the length of the longest common prefix of the suffixes
/// `sa[i - 1]` and `sa[i]` (`lcp[0]` is ignored) — the convention produced by
/// Kasai's algorithm in `era-suffix-array`.
pub fn assemble_from_sa_lcp(text: &[u8], sa: &[u32], lcp: &[u32]) -> SuffixTree {
    assert_eq!(lcp.len(), sa.len(), "expected lcp.len() == sa.len() with lcp[0] ignored");
    assert!(!sa.is_empty(), "cannot assemble a tree from an empty suffix array");
    let branching: Vec<Branching> = (1..sa.len())
        .map(|i| {
            let l = lcp[i];
            Branching {
                left_char: text[(sa[i - 1] + l) as usize],
                right_char: text[(sa[i] + l) as usize],
                lcp: l,
            }
        })
        .collect();
    assemble_from_sorted(text.len(), sa, &branching, text[sa[0] as usize])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_tree;
    use crate::validate::validate_suffix_tree;

    fn sa_and_lcp(text: &[u8]) -> (Vec<u32>, Vec<u32>) {
        let mut sa: Vec<u32> = (0..text.len() as u32).collect();
        sa.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        let mut lcp = vec![0u32; sa.len()];
        for i in 1..sa.len() {
            let a = &text[sa[i - 1] as usize..];
            let b = &text[sa[i] as usize..];
            lcp[i] = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count() as u32;
        }
        (sa, lcp)
    }

    #[test]
    fn assembles_banana_correctly() {
        let text = b"banana\0";
        let (sa, lcp) = sa_and_lcp(text);
        let tree = assemble_from_sa_lcp(text, &sa, &lcp);
        validate_suffix_tree(&tree, text, Some(text.len())).unwrap();
        assert_eq!(tree.lexicographic_suffixes(), sa);
    }

    #[test]
    fn matches_naive_builder_structure() {
        for body in ["mississippi", "abracadabra", "aaaaaaa", "abcabcabc", "GATTACAGATTACA"] {
            let mut text = body.as_bytes().to_vec();
            text.push(0);
            let (sa, lcp) = sa_and_lcp(&text);
            let assembled = assemble_from_sa_lcp(&text, &sa, &lcp);
            let naive = naive_suffix_tree(&text);
            validate_suffix_tree(&assembled, &text, Some(text.len())).unwrap();
            assert_eq!(assembled.lexicographic_suffixes(), naive.lexicographic_suffixes());
            assert_eq!(assembled.leaf_count(), naive.leaf_count());
            assert_eq!(assembled.internal_count(), naive.internal_count());
        }
    }

    #[test]
    fn single_leaf_tree() {
        let tree = assemble_from_sorted(5, &[4], &[], 0);
        assert_eq!(tree.leaf_count(), 1);
        assert_eq!(tree.node(tree.children(tree.root())[0]).suffix(), Some(4));
    }

    #[test]
    fn subtree_of_prefix_only() {
        // Sub-tree of suffixes sharing the prefix "an" in "banana$":
        // suffixes 3 (ana$) and 1 (anana$), lcp 3.
        let text = b"banana\0";
        let leaves = [3u32, 1u32];
        let branching = [Branching { left_char: 0, right_char: b'n', lcp: 3 }];
        let tree = assemble_from_sorted(text.len(), &leaves, &branching, b'a');
        assert_eq!(tree.leaf_count(), 2);
        assert_eq!(tree.internal_count(), 2); // root + the "ana" node
        let labels: Vec<Vec<u8>> =
            tree.lexicographic_suffixes().iter().map(|&s| text[s as usize..].to_vec()).collect();
        assert_eq!(labels, vec![b"ana\0".to_vec(), b"anana\0".to_vec()]);
        // The root child caches the prefix's first character.
        let root_child = tree.children(tree.root())[0];
        assert_eq!(tree.node(root_child).first_char, b'a');
    }

    #[test]
    fn root_children_are_sorted_by_first_char() {
        let text = b"cab\0";
        let (sa, lcp) = sa_and_lcp(text);
        let tree = assemble_from_sa_lcp(text, &sa, &lcp);
        let firsts: Vec<u8> =
            tree.children(tree.root()).iter().map(|&c| tree.node(c).first_char).collect();
        assert_eq!(firsts, vec![0, b'a', b'b', b'c']);
    }

    #[test]
    #[should_panic(expected = "without leaves")]
    fn empty_leaves_panics() {
        assemble_from_sorted(3, &[], &[], 0);
    }

    #[test]
    #[should_panic(expected = "one branching entry")]
    fn mismatched_lengths_panic() {
        assemble_from_sorted(3, &[0, 1], &[], 0);
    }
}
