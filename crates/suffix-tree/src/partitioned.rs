//! The partitioned suffix tree: ERA's final output.
//!
//! ERA never materialises one gigantic tree; the result of construction is a
//! set of independent sub-trees, one per variable-length S-prefix, assembled
//! under a tiny trie (Fig. 3 of the paper: "the trie for the human genome is
//! in the order of KB"). This module provides that representation together
//! with queries that are equivalent to querying the full tree.
//!
//! Construction hands over mutable [`Partition`]s (`Vec`-node
//! [`SuffixTree`]s); [`PartitionedSuffixTree::new`] immediately freezes each
//! one into a [`FlatPartition`] (a cache-conscious [`FlatTree`] arena — see
//! [`crate::layout`]), so everything downstream — the query engine, the
//! serializer, the index — serves from the flat form.

use era_string_store::{StoreResult, TextSource};

use crate::assemble::assemble_from_sa_lcp;
use crate::layout::{FlatPartition, FlatTree};
use crate::query::MatchResult;
use crate::stats::TreeStats;
use crate::tree::SuffixTree;

/// One vertical partition in its mutable construction form: the sub-tree
/// indexing all suffixes that share the S-prefix `prefix`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    /// The variable-length S-prefix identifying the partition.
    pub prefix: Vec<u8>,
    /// The sub-tree over the suffixes starting with `prefix`.
    pub tree: SuffixTree,
}

/// A small trie over the partition prefixes, used to route queries to the
/// relevant sub-tree(s).
///
/// Like the sub-trees themselves the trie is frozen for serving: every node
/// stores a `(start, len)` range into one shared edge arena instead of its
/// own `Vec`, so routing walks contiguous memory and the size accounting is
/// exact.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixTrie {
    nodes: Vec<TrieNode>,
    /// `(symbol, child index)` pairs of every node, packed back to back;
    /// each node's slice is sorted by symbol.
    edges: Vec<(u8, u32)>,
}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
struct TrieNode {
    /// Start of this node's slice in the shared `edges` arena.
    edges_start: u32,
    /// Number of outgoing edges.
    edges_len: u32,
    /// Partition index if a prefix ends exactly at this node.
    partition: Option<u32>,
}

impl PrefixTrie {
    /// Builds a trie from the partition prefixes (in partition order).
    pub fn build(prefixes: &[Vec<u8>]) -> Self {
        // Grow with per-node vectors, then freeze into the packed arena.
        let mut children: Vec<Vec<(u8, u32)>> = vec![Vec::new()];
        let mut partition: Vec<Option<u32>> = vec![None];
        for (idx, prefix) in prefixes.iter().enumerate() {
            let mut cur = 0usize;
            for &c in prefix {
                cur = match children[cur].binary_search_by_key(&c, |&(s, _)| s) {
                    Ok(i) => children[cur][i].1 as usize,
                    Err(i) => {
                        let id = children.len();
                        children[cur].insert(i, (c, id as u32));
                        children.push(Vec::new());
                        partition.push(None);
                        id
                    }
                };
            }
            partition[cur] = Some(idx as u32);
        }
        let mut nodes = Vec::with_capacity(children.len());
        let mut edges = Vec::with_capacity(children.iter().map(Vec::len).sum());
        for (kids, part) in children.into_iter().zip(partition) {
            nodes.push(TrieNode {
                edges_start: edges.len() as u32,
                edges_len: kids.len() as u32,
                partition: part,
            });
            edges.extend(kids);
        }
        PrefixTrie { nodes, edges }
    }

    // era-check: allow(panic-path): edges_start/edges_len are produced by build over this arena
    fn children(&self, node: u32) -> &[(u8, u32)] {
        let n = &self.nodes[node as usize];
        &self.edges[n.edges_start as usize..(n.edges_start + n.edges_len) as usize]
    }

    /// Number of trie nodes (reported in experiments as the "trie on top").
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Exact in-memory size of the trie in bytes: the node records plus the
    /// packed edge arena. (The old estimate charged 5 bytes per edge and
    /// ignored both the per-node `Vec` headers it actually paid and edge-slot
    /// padding; the packed layout makes the figure exact instead.)
    pub fn approx_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<TrieNode>()
            + self.edges.len() * std::mem::size_of::<(u8, u32)>()
    }

    /// Partitions that can contain occurrences of `pattern`.
    ///
    /// Walks the trie along the pattern. If the pattern ends inside the trie,
    /// every partition below the reached node is a candidate (all their
    /// suffixes start with the pattern). If a partition prefix ends before the
    /// pattern does, only that partition is a candidate (prefixes are
    /// prefix-free).
    // era-check: allow(panic-path): trie node ids are produced by build
    pub fn candidates(&self, pattern: &[u8]) -> Vec<u32> {
        let mut cur = 0u32;
        for &c in pattern {
            if let Some(p) = self.nodes[cur as usize].partition {
                return vec![p];
            }
            match self.children(cur).binary_search_by_key(&c, |&(s, _)| s) {
                Ok(k) => cur = self.children(cur)[k].1,
                Err(_) => return Vec::new(),
            }
        }
        // Pattern exhausted inside (or exactly at the end of) the trie.
        let mut out = Vec::new();
        self.collect_partitions(cur, &mut out);
        out
    }

    // era-check: allow(panic-path): trie node ids are produced by build
    fn collect_partitions(&self, node: u32, out: &mut Vec<u32>) {
        let mut stack = vec![node];
        while let Some(cur) = stack.pop() {
            if let Some(p) = self.nodes[cur as usize].partition {
                out.push(p);
            }
            for &(_, c) in self.children(cur).iter().rev() {
                stack.push(c);
            }
        }
    }

    /// `(string_depth, node, number_of_partitions_below)` for every trie node
    /// — used to account for repeated substrings shorter than the partition
    /// prefixes.
    fn depth_and_partition_counts(&self) -> Vec<(u32, u32, usize)> {
        let mut counts = vec![0usize; self.nodes.len()];
        let mut order = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![(0u32, 0u32)];
        while let Some((cur, depth)) = stack.pop() {
            order.push((cur, depth));
            for &(_, c) in self.children(cur) {
                stack.push((c, depth + 1));
            }
        }
        for &(id, _) in order.iter().rev() {
            let mut c = usize::from(self.nodes[id as usize].partition.is_some());
            for &(_, child) in self.children(id) {
                c += counts[child as usize];
            }
            counts[id as usize] = c;
        }
        order.into_iter().map(|(id, d)| (d, id, counts[id as usize])).collect()
    }
}

/// The complete index: frozen partitions plus the routing trie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionedSuffixTree {
    text_len: usize,
    partitions: Vec<FlatPartition>,
    trie: PrefixTrie,
}

impl PartitionedSuffixTree {
    /// Builds the index from construction-form partitions: sorts them by
    /// prefix, freezes every sub-tree into the flat serving layout and builds
    /// the routing trie. The prefixes must be prefix-free (which vertical
    /// partitioning guarantees).
    pub fn new(text_len: usize, mut partitions: Vec<Partition>) -> Self {
        partitions.sort_by(|a, b| a.prefix.cmp(&b.prefix));
        let flat: Vec<FlatPartition> = partitions
            .into_iter()
            .map(|p| FlatPartition { tree: FlatTree::freeze(&p.tree), prefix: p.prefix })
            .collect();
        Self::from_flat(text_len, flat)
    }

    /// Builds the index from already-frozen partitions (the deserialization
    /// path; [`Self::new`] is the construction path).
    pub fn from_flat(text_len: usize, mut partitions: Vec<FlatPartition>) -> Self {
        partitions.sort_by(|a, b| a.prefix.cmp(&b.prefix));
        let prefixes: Vec<Vec<u8>> = partitions.iter().map(|p| p.prefix.clone()).collect();
        let trie = PrefixTrie::build(&prefixes);
        PartitionedSuffixTree { text_len, partitions, trie }
    }

    /// Length of the indexed text (including the terminal).
    pub fn text_len(&self) -> usize {
        self.text_len
    }

    /// The frozen partitions in lexicographic prefix order.
    pub fn partitions(&self) -> &[FlatPartition] {
        &self.partitions
    }

    /// The routing trie.
    pub fn trie(&self) -> &PrefixTrie {
        &self.trie
    }

    /// Total number of leaves across all partitions (equals the text length
    /// for a complete index).
    pub fn leaf_count(&self) -> usize {
        self.partitions.iter().map(|p| p.tree.leaf_count()).sum()
    }

    /// Merged structural statistics over all sub-trees.
    pub fn stats(&self) -> TreeStats {
        self.partitions.iter().fold(TreeStats::default(), |acc, p| acc.merge(&p.tree.stats()))
    }

    /// Whether `pattern` occurs in the text behind any [`TextSource`].
    ///
    /// Stops at the first candidate partition that matches.
    // era-check: allow(panic-path): candidate partitions come from the trie built over this table
    pub fn try_contains<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<bool> {
        if pattern.is_empty() {
            return Ok(self.leaf_count() > 0);
        }
        for p in self.trie.candidates(pattern) {
            if self.partitions[p as usize].tree.try_contains(text, pattern)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Whether `pattern` occurs in the text.
    pub fn contains(&self, text: &[u8], pattern: &[u8]) -> bool {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_contains(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// Number of occurrences of `pattern` behind any [`TextSource`].
    // era-check: allow(panic-path): candidate partitions come from the trie built over this table
    pub fn try_count<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<usize> {
        if pattern.is_empty() {
            return Ok(self.leaf_count());
        }
        let mut total = 0usize;
        for p in self.trie.candidates(pattern) {
            total += self.partitions[p as usize].tree.try_count(text, pattern)?;
        }
        Ok(total)
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, text: &[u8], pattern: &[u8]) -> usize {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_count(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// All occurrence positions of `pattern` behind any [`TextSource`], in
    /// ascending position order.
    // era-check: allow(panic-path): candidate partitions come from the trie built over this table
    pub fn try_find_all<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<Vec<u32>> {
        let mut out: Vec<u32> = if pattern.is_empty() {
            self.partitions.iter().flat_map(|p| p.tree.lexicographic_suffixes()).collect()
        } else {
            let mut out = Vec::new();
            for p in self.trie.candidates(pattern) {
                out.extend(self.partitions[p as usize].tree.try_find_all(text, pattern)?);
            }
            out
        };
        out.sort_unstable();
        Ok(out)
    }

    /// All occurrence positions of `pattern` (in ascending position order).
    pub fn find_all(&self, text: &[u8], pattern: &[u8]) -> Vec<u32> {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_find_all(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// The longest substring occurring at least twice, as `(offset, length)`.
    pub fn longest_repeated_substring(&self, text: &[u8]) -> Option<(u32, u32)> {
        // Deep repeats live inside partitions.
        let mut best: Option<(u32, u32)> = None;
        for p in &self.partitions {
            if let Some((off, len)) = p.tree.longest_repeated_substring(text) {
                if best.map(|(_, l)| len > l).unwrap_or(true) {
                    best = Some((off, len));
                }
            }
        }
        // Shallow repeats may sit above the partition prefixes (inside the
        // trie): a trie node at depth d with at least two suffixes below it
        // witnesses a repeat of length d.
        for (depth, id, _parts) in self.trie.depth_and_partition_counts() {
            if depth == 0 {
                continue;
            }
            let leaves_below: usize = {
                let mut out = Vec::new();
                self.trie.collect_partitions(id, &mut out);
                out.iter().map(|&p| self.partitions[p as usize].tree.leaf_count()).sum()
            };
            if leaves_below >= 2 && best.map(|(_, l)| depth > l).unwrap_or(true) {
                // Any suffix below spells the repeated prefix at its offset.
                let mut parts = Vec::new();
                self.trie.collect_partitions(id, &mut parts);
                let leaf = self.partitions[parts[0] as usize].tree.lexicographic_suffixes()[0];
                best = Some((leaf, depth));
            }
        }
        best
    }

    /// Lexicographically sorted suffix offsets across all partitions
    /// (the suffix array of the text when the index is complete).
    pub fn lexicographic_suffixes(&self) -> Vec<u32> {
        self.partitions.iter().flat_map(|p| p.tree.lexicographic_suffixes()).collect()
    }

    /// Merges every partition into a single in-memory [`SuffixTree`].
    ///
    /// Useful for validation and for queries (such as longest common
    /// substring) that are simpler on a single tree. Requires the text.
    pub fn to_single_tree(&self, text: &[u8]) -> SuffixTree {
        let sa = self.lexicographic_suffixes();
        assert!(!sa.is_empty(), "cannot merge an empty partitioned tree");
        let mut lcp = vec![0u32; sa.len()];
        for i in 1..sa.len() {
            let a = &text[sa[i - 1] as usize..];
            let b = &text[sa[i] as usize..];
            lcp[i] = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count() as u32;
        }
        assemble_from_sa_lcp(text, &sa, &lcp)
    }

    /// Convenience constructor for a single-partition index over the whole
    /// text (used by in-memory baselines so that all algorithms share one
    /// output type).
    pub fn single(text_len: usize, tree: SuffixTree) -> Self {
        PartitionedSuffixTree::new(text_len, vec![Partition { prefix: Vec::new(), tree }])
    }

    /// Match a pattern against every candidate partition of any
    /// [`TextSource`], reporting the sub-tree node(s).
    pub fn try_match_in_partitions<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<Vec<(usize, MatchResult)>> {
        let mut out = Vec::new();
        for p in self.trie.candidates(pattern) {
            let r = self.partitions[p as usize].tree.try_match_pattern(text, pattern)?;
            out.push((p as usize, r));
        }
        Ok(out)
    }

    /// Match a pattern and report the sub-tree node(s); mostly useful for
    /// diagnostics and tests.
    pub fn match_in_partitions(&self, text: &[u8], pattern: &[u8]) -> Vec<(usize, MatchResult)> {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_match_in_partitions(text, pattern).expect("byte-slice text sources cannot fail")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_tree;
    use crate::validate::{validate_partitioned, validate_suffix_tree};

    /// Builds a partitioned tree by hand from the naive full tree: one
    /// partition per distinct first character.
    fn partition_by_first_char(text: &[u8]) -> PartitionedSuffixTree {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<u8, Vec<u32>> = BTreeMap::new();
        for i in 0..text.len() as u32 {
            groups.entry(text[i as usize]).or_default().push(i);
        }
        let parts: Vec<Partition> = groups
            .into_iter()
            .map(|(c, mut leaves)| {
                leaves.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
                let mut lcp = vec![0u32; leaves.len()];
                for i in 1..leaves.len() {
                    let a = &text[leaves[i - 1] as usize..];
                    let b = &text[leaves[i] as usize..];
                    lcp[i] = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count() as u32;
                }
                Partition {
                    prefix: vec![c],
                    tree: crate::assemble::assemble_from_sa_lcp(text, &leaves, &lcp),
                }
            })
            .collect();
        PartitionedSuffixTree::new(text.len(), parts)
    }

    #[test]
    fn partitioned_queries_match_full_tree() {
        let text = b"mississippi\0";
        let part = partition_by_first_char(text);
        let full = naive_suffix_tree(text);
        validate_partitioned(&part, text).unwrap();
        for pattern in [&b"ss"[..], b"issi", b"i", b"p", b"zzz", b"mississippi", b""] {
            let mut expected = full.find_all(text, pattern);
            expected.sort_unstable();
            assert_eq!(part.find_all(text, pattern), expected, "pattern {pattern:?}");
            assert_eq!(part.count(text, pattern), expected.len());
        }
    }

    #[test]
    fn partitions_are_served_flat() {
        let text = b"mississippi\0";
        let part = partition_by_first_char(text);
        let stats = part.stats();
        assert_eq!(stats.arena_bytes, stats.nodes * crate::layout::FLAT_NODE_BYTES);
        assert!((stats.bytes_per_node() - crate::layout::FLAT_NODE_BYTES as f64).abs() < 1e-9);
    }

    #[test]
    fn lexicographic_merge_equals_suffix_array() {
        let text = b"abracadabra\0";
        let part = partition_by_first_char(text);
        let full = naive_suffix_tree(text);
        assert_eq!(part.lexicographic_suffixes(), full.lexicographic_suffixes());
    }

    #[test]
    fn to_single_tree_is_valid_and_equivalent() {
        let text = b"GATTACAGATTACA\0";
        let part = partition_by_first_char(text);
        let merged = part.to_single_tree(text);
        validate_suffix_tree(&merged, text, Some(text.len())).unwrap();
        let full = naive_suffix_tree(text);
        assert_eq!(merged.lexicographic_suffixes(), full.lexicographic_suffixes());
        assert_eq!(merged.internal_count(), full.internal_count());
    }

    #[test]
    fn longest_repeated_substring_matches_full_tree() {
        for body in ["mississippi", "abracadabra", "TGGTGGTGGTGCGGTGATGGTGC", "aaaa"] {
            let mut text = body.as_bytes().to_vec();
            text.push(0);
            let part = partition_by_first_char(&text);
            let full = naive_suffix_tree(&text);
            let expected = full.longest_repeated_substring(&text).map(|(_, l)| l);
            let got = part.longest_repeated_substring(&text).map(|(_, l)| l);
            assert_eq!(got, expected, "body {body}");
        }
    }

    #[test]
    fn trie_candidates() {
        let prefixes = vec![b"TGA".to_vec(), b"TGC".to_vec(), b"TGG".to_vec(), b"A".to_vec()];
        let trie = PrefixTrie::build(&prefixes);
        assert!(trie.node_count() >= 6);
        // Pattern shorter than prefixes: all TG* partitions are candidates.
        let mut c = trie.candidates(b"TG");
        c.sort_unstable();
        assert_eq!(c, vec![0, 1, 2]);
        // Pattern longer than a prefix: only that partition.
        assert_eq!(trie.candidates(b"TGCGGT"), vec![1]);
        // Pattern that matches nothing.
        assert!(trie.candidates(b"C").is_empty());
        // Pattern equal to a short prefix.
        assert_eq!(trie.candidates(b"A"), vec![3]);
        assert!(trie.approx_bytes() > 0);
    }

    #[test]
    fn trie_bytes_account_for_every_edge() {
        let prefixes = vec![b"TGA".to_vec(), b"TGC".to_vec(), b"TGG".to_vec(), b"A".to_vec()];
        let trie = PrefixTrie::build(&prefixes);
        // 7 nodes (root, T, TG, TGA, TGC, TGG, A) and 6 edges.
        assert_eq!(trie.node_count(), 7);
        let expected = 7 * std::mem::size_of::<TrieNode>() + 6 * std::mem::size_of::<(u8, u32)>();
        assert_eq!(trie.approx_bytes(), expected);
    }

    #[test]
    fn single_partition_wrapper() {
        let text = b"banana\0";
        let tree = naive_suffix_tree(text);
        let single = PartitionedSuffixTree::single(text.len(), tree);
        assert_eq!(single.leaf_count(), 7);
        assert_eq!(single.count(text, b"an"), 2);
        assert_eq!(single.find_all(text, b"na"), vec![2, 4]);
    }
}
