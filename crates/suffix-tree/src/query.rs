//! Query operations over a single suffix (sub-)tree.
//!
//! These are the classic operations the paper motivates in §1: exact substring
//! search in `O(|P|)`, occurrence counting/enumeration, the longest repeated
//! substring and the longest common substring of two strings (via a
//! generalized tree over their concatenation).
//!
//! Pattern matching is generic over [`TextSource`]: the `try_*` methods
//! resolve edge labels through any source — an in-memory byte slice (the
//! zero-overhead fast path) or a
//! [`StoreTextSource`](era_string_store::StoreTextSource) reading a raw or
//! bit-packed [`StringStore`](era_string_store::StringStore) — so the same
//! traversal serves queries with or without the text materialized. The
//! `&[u8]` methods remain as thin infallible wrappers.

use era_string_store::{StoreResult, TextSource};

use crate::node::NodeId;
use crate::tree::SuffixTree;

/// Outcome of matching a pattern against the tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchResult {
    /// The whole pattern was matched; the node is the highest node whose
    /// subtree contains every occurrence.
    Complete {
        /// Node at or below which every occurrence lies.
        node: NodeId,
    },
    /// The pattern does not occur.
    NoMatch,
}

impl SuffixTree {
    /// Matches `pattern` from the root, resolving edge labels through any
    /// [`TextSource`].
    // era-check: allow(panic-path): matched < pattern.len() is the walk loop invariant
    pub fn try_match_pattern<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<MatchResult> {
        if pattern.is_empty() {
            return Ok(MatchResult::Complete { node: self.root() });
        }
        let mut node = self.root();
        let mut matched = 0usize;
        'walk: loop {
            // Fast path: the sorted `first_char` cache pinpoints the child
            // without touching the text. The cache is only a read-avoidance
            // device, though — the text stays authoritative: a candidate
            // whose edge text turns out not to start with the pattern symbol
            // (zero symbols matched on its edge) means the cache lied, and
            // the walk falls through to the sibling scan below instead of
            // reporting a false `NoMatch`. With a healthy cache that case is
            // impossible (first symbol equal ⇒ at least one symbol matches),
            // so the check costs nothing.
            let direct = self.child_starting_with(node, pattern[matched]);
            if let Some(child) = direct {
                let before = matched;
                match self.match_edge(text, pattern, &mut matched, child)? {
                    Some(MatchResult::NoMatch) if matched == before => {}
                    Some(r) => return Ok(r),
                    None => {
                        node = child;
                        continue 'walk;
                    }
                }
            }
            // Fallback: the cache had no (trustworthy) answer — e.g. the
            // unset `first_char` of a sub-tree root, or a stale entry. Only
            // the edge text decides which child to follow here; the cached
            // `first_char` is not consulted at all, so a stale entry can
            // never divert the walk past the right sibling.
            let mut found = None;
            for &c in self.children(node) {
                if direct == Some(c) {
                    continue; // its edge text already ruled it out above
                }
                if text.symbol_at(self.node(c).start as usize)? == pattern[matched] {
                    found = Some(c);
                    break;
                }
            }
            match found {
                Some(c) => {
                    if let Some(r) = self.match_edge(text, pattern, &mut matched, c)? {
                        return Ok(r);
                    }
                    node = c;
                }
                None => return Ok(MatchResult::NoMatch),
            }
        }
    }

    /// Matches `pattern` from the root, comparing edge labels against `text`.
    pub fn match_pattern(&self, text: &[u8], pattern: &[u8]) -> MatchResult {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_match_pattern(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// Matches as much of `pattern` as possible along the edge into `child`.
    /// Returns `Some(result)` when matching terminates on this edge.
    // era-check: allow(panic-path): *matched < pattern.len() checked by the caller
    fn match_edge<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
        matched: &mut usize,
        child: NodeId,
    ) -> StoreResult<Option<MatchResult>> {
        let ch = self.node(child);
        let label_len = (ch.end as usize).min(text.len()) - ch.start as usize;
        let remaining = &pattern[*matched..];
        let k = text.common_prefix(ch.start as usize, ch.end as usize, remaining)?;
        *matched += k;
        Ok(if *matched == pattern.len() {
            Some(MatchResult::Complete { node: child })
        } else if k < label_len {
            Some(MatchResult::NoMatch)
        } else {
            None // full edge matched, pattern continues below `child`
        })
    }

    /// Whether `pattern` occurs in the text behind any [`TextSource`].
    pub fn try_contains<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<bool> {
        Ok(matches!(self.try_match_pattern(text, pattern)?, MatchResult::Complete { .. }))
    }

    /// Whether `pattern` occurs in the indexed text.
    pub fn contains(&self, text: &[u8], pattern: &[u8]) -> bool {
        matches!(self.match_pattern(text, pattern), MatchResult::Complete { .. })
    }

    /// All occurrence positions of `pattern` behind any [`TextSource`], in
    /// lexicographic order of the suffixes that start with it (see
    /// [`Self::find_all`]).
    pub fn try_find_all<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<Vec<u32>> {
        Ok(match self.try_match_pattern(text, pattern)? {
            MatchResult::Complete { node } => self.leaves_below(node),
            MatchResult::NoMatch => Vec::new(),
        })
    }

    /// All occurrence positions of `pattern`, in **lexicographic order of the
    /// suffixes** that start with it — *not* ascending position order. Use
    /// [`Self::find_all_sorted`] for ascending positions.
    pub fn find_all(&self, text: &[u8], pattern: &[u8]) -> Vec<u32> {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_find_all(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// All occurrence positions of `pattern`, sorted ascending.
    pub fn find_all_sorted(&self, text: &[u8], pattern: &[u8]) -> Vec<u32> {
        let mut out = self.find_all(text, pattern);
        out.sort_unstable();
        out
    }

    /// Number of occurrences of `pattern` behind any [`TextSource`].
    pub fn try_count<T: TextSource + ?Sized>(
        &self,
        text: &T,
        pattern: &[u8],
    ) -> StoreResult<usize> {
        Ok(match self.try_match_pattern(text, pattern)? {
            MatchResult::Complete { node } => self.leaf_count_below(node),
            MatchResult::NoMatch => 0,
        })
    }

    /// Number of occurrences of `pattern`.
    pub fn count(&self, text: &[u8], pattern: &[u8]) -> usize {
        // era-check: allow(unwrap): infallible byte-slice text source
        self.try_count(text, pattern).expect("byte-slice text sources cannot fail")
    }

    /// The longest substring that occurs at least twice, returned as
    /// `(offset, length)`; `None` when no substring repeats (e.g. a string of
    /// distinct symbols).
    ///
    /// This is the deepest internal node of the tree.
    pub fn longest_repeated_substring(&self, _text: &[u8]) -> Option<(u32, u32)> {
        let mut best: Option<(u32, u32)> = None; // (depth, node)
        for (id, depth) in self.dfs() {
            if !self.node(id).is_leaf()
                && id != self.root()
                && depth > 0
                && best.map(|(d, _)| depth > d).unwrap_or(true)
            {
                best = Some((depth, id));
            }
        }
        best.map(|(depth, id)| {
            // Any leaf below spells the substring at its own offset.
            let leaf = self.leaves_below(id)[0];
            (leaf, depth)
        })
    }

    /// Longest common substring of the two halves of a generalized text
    /// `left # right $`, where `separator_pos` is the index of `#`.
    ///
    /// Returns `(offset_in_text, length)` of one occurrence inside the left
    /// half, or `None` if the strings share no symbol.
    pub fn longest_common_substring(
        &self,
        text: &[u8],
        separator_pos: usize,
    ) -> Option<(u32, u32)> {
        debug_assert!(separator_pos < text.len(), "separator must lie inside the text");
        let sep = separator_pos as u32;
        // For every internal node, determine whether it has a leaf on each
        // side of the separator and whether the path label stays inside the
        // left string. Process nodes bottom-up using a post-order pass.
        let order = self.dfs();
        let mut min_left: Vec<u32> = vec![u32::MAX; self.node_count()];
        let mut has_right: Vec<bool> = vec![false; self.node_count()];
        // Post-order: children appear after parents in `dfs` output is NOT
        // guaranteed, so process in reverse topological order by iterating the
        // DFS output backwards (children were pushed after their parent).
        for &(id, _) in order.iter().rev() {
            let node = self.node(id);
            if let Some(s) = node.suffix() {
                if s < sep {
                    min_left[id as usize] = s;
                } else if s > sep {
                    has_right[id as usize] = true;
                }
            } else {
                for &c in node.children() {
                    min_left[id as usize] = min_left[id as usize].min(min_left[c as usize]);
                    has_right[id as usize] = has_right[id as usize] || has_right[c as usize];
                }
            }
        }
        let mut best: Option<(u32, u32)> = None;
        for (id, depth) in order {
            if id == self.root() || self.node(id).is_leaf() || depth == 0 {
                continue;
            }
            let left = min_left[id as usize];
            if left == u32::MAX || !has_right[id as usize] {
                continue;
            }
            // The path label must not cross the separator.
            if left + depth > sep {
                continue;
            }
            if best.map(|(_, d)| depth > d).unwrap_or(true) {
                best = Some((left, depth));
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_tree;
    use era_string_store::{InMemoryStore, StoreTextSource};

    fn tree_for(body: &[u8]) -> (Vec<u8>, SuffixTree) {
        let mut text = body.to_vec();
        text.push(0);
        let t = naive_suffix_tree(&text);
        (text, t)
    }

    #[test]
    fn find_all_matches_scan() {
        let (text, t) = tree_for(b"mississippi");
        for pattern in [&b"ss"[..], b"issi", b"i", b"mississippi", b"p", b"sip"] {
            let mut expected: Vec<u32> = (0..text.len() - 1)
                .filter(|&i| text[i..].starts_with(pattern))
                .map(|i| i as u32)
                .collect();
            let mut got = t.find_all(&text, pattern);
            got.sort_unstable();
            expected.sort_unstable();
            assert_eq!(got, expected, "pattern {:?}", std::str::from_utf8(pattern));
            assert_eq!(t.count(&text, pattern), expected.len());
            assert_eq!(t.contains(&text, pattern), !expected.is_empty());
            assert_eq!(t.find_all_sorted(&text, pattern), expected);
        }
    }

    #[test]
    fn absent_patterns() {
        let (text, t) = tree_for(b"mississippi");
        assert!(!t.contains(&text, b"xyz"));
        assert!(!t.contains(&text, b"ssb"));
        assert!(t.find_all(&text, b"ippi2").is_empty());
        assert_eq!(t.count(&text, b"zzz"), 0);
    }

    #[test]
    fn empty_pattern_matches_everything() {
        let (text, t) = tree_for(b"abcab");
        assert_eq!(t.count(&text, b""), text.len());
        assert!(t.contains(&text, b""));
    }

    #[test]
    fn store_backed_source_answers_like_the_slice() {
        let (text, t) = tree_for(b"mississippi");
        let store = InMemoryStore::new(
            text.clone(),
            era_string_store::Alphabet::infer(&text[..text.len() - 1]).unwrap(),
        )
        .unwrap()
        .with_block_size(4)
        .unwrap();
        let source = StoreTextSource::with_window(&store, 4);
        for pattern in
            [&b"ss"[..], b"issi", b"i", b"mississippi", b"p", b"sip", b"", b"zzz", b"mississippix"]
        {
            assert_eq!(
                t.try_find_all(&source, pattern).unwrap(),
                t.find_all(&text, pattern),
                "pattern {:?}",
                std::str::from_utf8(pattern)
            );
            assert_eq!(t.try_count(&source, pattern).unwrap(), t.count(&text, pattern));
            assert_eq!(t.try_contains(&source, pattern).unwrap(), t.contains(&text, pattern));
        }
    }

    /// The child of `node` whose outgoing edge *text* starts with `c` (the
    /// oracle the `first_char` cache approximates).
    fn child_by_text(
        t: &SuffixTree,
        text: &[u8],
        node: crate::node::NodeId,
        c: u8,
    ) -> crate::node::NodeId {
        *t.children(node)
            .iter()
            .find(|&&ch| text[t.node(ch).start as usize] == c)
            .expect("child with that edge text exists")
    }

    #[test]
    fn stale_first_char_on_the_direct_path_falls_back_to_siblings() {
        // Corrupt the 'm' child of the root to *claim* 'i': the sorted
        // binary search for 'i' then lands on the impostor, whose edge text
        // is 'm...'. The text is authoritative, so the walk must recover and
        // follow the true 'i' child instead of reporting a false NoMatch.
        let (text, mut t) = tree_for(b"mississippi");
        let expected: Vec<_> = [b"issi".as_slice(), b"i", b"ississippi"]
            .iter()
            .map(|p| t.find_all_sorted(&text, p))
            .collect();
        let m_child = child_by_text(&t, &text, t.root(), b'm');
        t.node_mut(m_child).first_char = b'i';
        for (pattern, expect) in [b"issi".as_slice(), b"i", b"ississippi"].iter().zip(expected) {
            assert_eq!(
                t.find_all_sorted(&text, pattern),
                expect,
                "stale cache diverted pattern {:?}",
                std::str::from_utf8(pattern)
            );
        }
        // Patterns through the intact children still answer normally, and the
        // corrupted child itself is still reachable through the text.
        assert_eq!(t.count(&text, b"ss"), 2);
        assert!(t.contains(&text, b"mississippi"));
    }

    #[test]
    fn stale_first_char_in_the_fallback_scan_does_not_mask_siblings() {
        // The shape the bug needs: the binary search for 's' fails (the true
        // 's' child claims 'z'), and an *earlier* sibling stales to 's' while
        // its edge text is 'i...'. The old scan trusted the cached byte, broke
        // on the impostor and never tried the real 's' child → false NoMatch.
        let (text, mut t) = tree_for(b"mississippi");
        let expected: Vec<_> =
            [b"ssi".as_slice(), b"s", b"sip"].iter().map(|p| t.find_all_sorted(&text, p)).collect();
        let s_child = child_by_text(&t, &text, t.root(), b's');
        let i_child = child_by_text(&t, &text, t.root(), b'i');
        t.node_mut(s_child).first_char = b'z';
        t.node_mut(i_child).first_char = b's';
        for (pattern, expect) in [b"ssi".as_slice(), b"s", b"sip"].iter().zip(expected) {
            assert_eq!(
                t.find_all_sorted(&text, pattern),
                expect,
                "fallback scan missed the true child for {:?}",
                std::str::from_utf8(pattern)
            );
        }
        // Absent patterns still come back NoMatch (the scan must terminate).
        assert!(!t.contains(&text, b"sz"));
        assert_eq!(t.count(&text, b"zz"), 0);

        // The same corrupted tree over a store-backed source: the recovery
        // path may legitimately read the text, and must stay correct when
        // those reads are real fetches.
        let store = InMemoryStore::new(
            text.clone(),
            era_string_store::Alphabet::infer(&text[..text.len() - 1]).unwrap(),
        )
        .unwrap()
        .with_block_size(4)
        .unwrap();
        let source = StoreTextSource::with_window(&store, 4);
        assert_eq!(t.try_find_all(&source, b"ssi").unwrap(), t.find_all(&text, b"ssi"));
        assert_eq!(t.try_count(&source, b"s").unwrap(), t.count(&text, b"s"));
    }

    #[test]
    fn leaf_count_below_matches_leaves_below_len() {
        let (text, t) = tree_for(b"mississippi");
        for id in t.node_ids() {
            assert_eq!(t.leaf_count_below(id), t.leaves_below(id).len(), "node {id}");
        }
        // And through the public counting query (which now uses it).
        for pattern in [&b""[..], b"i", b"ss", b"issi", b"zzz", b"mississippi"] {
            assert_eq!(
                t.count(&text, pattern),
                t.find_all(&text, pattern).len(),
                "pattern {:?}",
                std::str::from_utf8(pattern)
            );
        }
    }

    #[test]
    fn longest_repeated_substring_mississippi() {
        let (text, t) = tree_for(b"mississippi");
        let (off, len) = t.longest_repeated_substring(&text).unwrap();
        assert_eq!(len, 4);
        assert_eq!(&text[off as usize..(off + len) as usize], b"issi");
    }

    #[test]
    fn longest_repeated_substring_none_for_unique_symbols() {
        let (text, t) = tree_for(b"abcd");
        assert!(t.longest_repeated_substring(&text).is_none());
    }

    #[test]
    fn longest_common_substring_basic() {
        // left = "xabcy", right = "zabcw", separator '#'
        let body = b"xabcy#zabcw";
        let (text, t) = tree_for(body);
        let sep = body.iter().position(|&b| b == b'#').unwrap();
        let (off, len) = t.longest_common_substring(&text, sep).unwrap();
        assert_eq!(len, 3);
        assert_eq!(&text[off as usize..(off + len) as usize], b"abc");
    }

    #[test]
    fn longest_common_substring_no_overlap() {
        let body = b"aaa#bbb";
        let (text, t) = tree_for(body);
        let sep = 3;
        assert!(t.longest_common_substring(&text, sep).is_none());
    }

    #[test]
    fn longest_common_substring_does_not_cross_separator() {
        // "ab#ab": the string "ab#a" crosses the separator and must not count.
        let body = b"ab#ab";
        let (text, t) = tree_for(body);
        let (off, len) = t.longest_common_substring(&text, 2).unwrap();
        assert_eq!(len, 2);
        assert_eq!(&text[off as usize..(off + len) as usize], b"ab");
    }

    #[test]
    fn paper_example_queries() {
        let (text, t) = tree_for(b"TGGTGGTGGTGCGGTGATGGTGC");
        // Table 1: "TG" occurs at 0, 3, 6, 9, 14, 17, 20.
        let mut got = t.find_all(&text, b"TG");
        got.sort_unstable();
        assert_eq!(got, vec![0, 3, 6, 9, 14, 17, 20]);
        assert_eq!(t.count(&text, b"TGGTG"), 4);
        assert_eq!(t.count(&text, b"TGGTGG"), 2);
    }
}
