//! `ERACAT1` — the crash-safe single-file index catalog.
//!
//! One file holds everything a serving index needs: the text (raw or
//! bit-packed), every partition-group's flat (`ERAFLAT1`) tree, and a
//! checksummed table of contents that is the *commit point* of the whole
//! catalog. The scattered directory layout (`manifest.era` + `part-*.st` +
//! text sidecars) stays readable, but it cannot be replaced atomically; the
//! catalog can.
//!
//! # On-disk format (all integers little-endian)
//!
//! ```text
//! offset 0                16 bytes   header
//!   magic      "ERACAT1\0"  8B
//!   version    u32          (currently 1)
//!   reserved   u32          (must be 0)
//! offset 16               text segment
//!   raw catalogs:    the terminated text, verbatim (1 byte/symbol,
//!                    trailing TERMINAL included)
//!   packed catalogs: the `PackedCodec::pack_body` payload only — the
//!                    alphabet and text length live in the TOC
//! then, contiguously      one ERAFLAT1 segment per partition group
//!   each segment is exactly the bytes `write_flat_tree` produces
//! then                    TOC (variable length)
//!   generation    u64      catalog generation number
//!   text_len      u64      terminated text length in symbols
//!   flags         u8       bit 0: text segment is packed
//!   alphabet_len  u8       number of alphabet symbols (≥ 1)
//!   reserved      u16      (must be 0)
//!   group_count   u32      number of partition groups (≥ 1)
//!   alphabet      alphabet_len bytes (symbol table, terminal excluded)
//!   text_offset   u64      must be 16
//!   text_bytes    u64      text segment length in bytes
//!   text_checksum u64      FNV-1a 64 of the text segment
//!   per group (group_count times):
//!     generation  u64      group generation (the incremental-replace seam)
//!     offset      u64      absolute segment offset
//!     len         u64      segment length in bytes
//!     checksum    u64      FNV-1a 64 of the segment
//!     prefix_len  u32      partition prefix length
//!     prefix      prefix_len bytes
//! offset file_len - 32    32 bytes   footer
//!   toc_offset   u64
//!   toc_len      u64
//!   toc_checksum u64      FNV-1a 64 of the TOC bytes
//!   magic        "ERACATF1"  8B
//! ```
//!
//! The layout is *strictly contiguous*: the text segment starts at byte 16,
//! each group segment starts where the previous one ends, the TOC starts
//! where the last group ends and ends exactly 32 bytes before EOF. Together
//! with the per-segment checksums this makes **every byte of the file
//! load-bearing** — the corruption matrix flips each bit of a whole catalog
//! and expects a diagnostic each time.
//!
//! # Commit protocol ([`CommitProtocol::Sound`])
//!
//! A catalog is never updated in place. [`commit_catalog`] writes the new
//! image to a unique temporary sibling through the [`Vfs`] seam:
//!
//! 1. write header + text + group segments,
//! 2. `sync_data` — **segments are durable before the TOC that promises
//!    them exists**,
//! 3. write TOC + footer,
//! 4. `sync_data`,
//! 5. `rename` over the target path,
//! 6. `sync_dir` the parent directory — the rename itself becomes durable.
//!
//! A crash anywhere before step 6 completes leaves the previous catalog
//! untouched; after it, the new one is fully durable. There is no third
//! state — the crash-matrix harness in `era-check` proves this by
//! enumerating every fault point of a recorded save against a [`FaultVfs`].
//! [`CommitProtocol::TocBeforeSegmentSync`] is the deliberately seeded bug
//! the harness must catch: it publishes the name (rename + dir sync) before
//! the data sync, so a crash in between leaves a durable catalog whose
//! bytes were never fsynced.

use std::io::{self, Read};
use std::path::Path;

use era_string_store::packed::packed_size;
use era_string_store::packed_store::{builtin_or_custom, unique_sibling};
use era_string_store::{Alphabet, Vfs};

use crate::layout::{FlatPartition, FlatTree};
use crate::partitioned::PartitionedSuffixTree;
use crate::serialize::{read_flat_tree, write_flat_tree, MAX_PREALLOC, MAX_PREFIX_LEN};

/// Header magic of an `ERACAT1` catalog file.
pub const CATALOG_MAGIC: &[u8; 8] = b"ERACAT1\0";
/// Footer magic, last 8 bytes of the file.
pub const FOOTER_MAGIC: &[u8; 8] = b"ERACATF1";
/// Current format version.
pub const CATALOG_VERSION: u32 = 1;
/// Fixed header length.
pub const HEADER_LEN: usize = 16;
/// Fixed footer length.
pub const FOOTER_LEN: usize = 32;
/// Flag bit: the text segment holds a packed payload.
const FLAG_PACKED: u8 = 1;
/// Write granularity of [`commit_catalog`]: small enough that a recorded
/// save has many distinct fault points, large enough to stay cheap.
const COMMIT_CHUNK: usize = 4096;

/// FNV-1a 64-bit over `bytes` — dependency-free, deterministic, and fast
/// enough for commit-time whole-segment checksums at this scale.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    h
}

fn corrupt(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// The text segment handed to [`encode_catalog`].
#[derive(Debug, Clone, Copy)]
pub enum TextSegment<'a> {
    /// Terminated text, stored verbatim (1 byte/symbol).
    Raw(&'a [u8]),
    /// A `PackedCodec::pack_body` payload covering `text_len - 1` symbols
    /// (the terminal is out-of-band, as everywhere in the packed layer).
    Packed {
        /// The packed payload bytes.
        payload: &'a [u8],
        /// Terminated text length in symbols.
        text_len: usize,
    },
}

/// A fully encoded catalog image plus the offset where its TOC begins —
/// the boundary between the two `sync_data` calls of the sound protocol.
#[derive(Debug, Clone)]
pub struct EncodedCatalog {
    /// The complete file image.
    pub bytes: Vec<u8>,
    /// Absolute offset of the TOC (end of the last group segment).
    pub toc_offset: usize,
}

/// One partition group as read back from a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CatalogGroup {
    /// The group's generation number (the incremental-replace seam: groups
    /// replaced individually will carry newer generations than their
    /// siblings).
    pub generation: u64,
    /// The partition prefix.
    pub prefix: Vec<u8>,
    /// The flat serving tree, structurally validated on load.
    pub tree: FlatTree,
}

/// The text segment as read back from a catalog.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogText {
    /// Terminated text, verbatim.
    Raw(Vec<u8>),
    /// Packed payload; decode with the catalog's [`Catalog::alphabet`].
    Packed(Vec<u8>),
}

/// A parsed, checksum-verified `ERACAT1` catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Catalog generation number.
    pub generation: u64,
    /// Terminated text length in symbols.
    pub text_len: usize,
    /// The alphabet recorded at save time (built-in kinds preserved).
    pub alphabet: Alphabet,
    /// The text segment.
    pub text: CatalogText,
    /// The partition groups, in on-disk order.
    pub groups: Vec<CatalogGroup>,
}

impl Catalog {
    /// Reads and fully verifies the catalog file at `path`.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Catalog> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        parse_catalog(&bytes)
    }

    /// Whether the text segment is packed.
    pub fn is_packed(&self) -> bool {
        matches!(self.text, CatalogText::Packed(_))
    }

    /// Consumes the groups into a serving tree.
    pub fn into_tree(self) -> PartitionedSuffixTree {
        let partitions = self
            .groups
            .into_iter()
            .map(|g| FlatPartition { prefix: g.prefix, tree: g.tree })
            .collect();
        PartitionedSuffixTree::from_flat(self.text_len, partitions)
    }
}

/// Builds the complete `ERACAT1` image for `tree` + `text` in memory.
///
/// Every group is written with `generation` as its group generation; a
/// future group-granular replace will splice newer generations per group.
pub fn encode_catalog(
    generation: u64,
    text: TextSegment<'_>,
    alphabet: &Alphabet,
    tree: &PartitionedSuffixTree,
) -> io::Result<EncodedCatalog> {
    let (text_bytes, text_len, packed) = match text {
        TextSegment::Raw(t) => (t, t.len(), false),
        TextSegment::Packed { payload, text_len } => (payload, text_len, true),
    };
    if text_len == 0 {
        return Err(corrupt("catalog text must be terminated (non-empty)".into()));
    }
    if !packed && text_bytes.last() != Some(&era_string_store::TERMINAL) {
        return Err(corrupt("raw catalog text must end with the terminal symbol".into()));
    }
    if packed {
        let want = packed_size(text_len - 1, alphabet.bits_per_symbol());
        if text_bytes.len() != want {
            return Err(corrupt(format!(
                "packed payload is {} bytes, text length {} needs {}",
                text_bytes.len(),
                text_len,
                want
            )));
        }
    }
    let alen = alphabet.symbols().len();
    if alen == 0 || alen > usize::from(u8::MAX) {
        return Err(corrupt(format!("catalog alphabets hold 1..=255 symbols, got {alen}")));
    }
    if tree.partitions().is_empty() {
        return Err(corrupt("catalog needs at least one partition group".into()));
    }
    if tree.text_len() != text_len {
        return Err(corrupt(format!(
            "tree text length {} disagrees with text segment length {}",
            tree.text_len(),
            text_len
        )));
    }

    let mut bytes = Vec::new();
    bytes.extend_from_slice(CATALOG_MAGIC);
    bytes.extend_from_slice(&CATALOG_VERSION.to_le_bytes());
    bytes.extend_from_slice(&0u32.to_le_bytes());
    debug_assert_eq!(bytes.len(), HEADER_LEN);

    let text_offset = bytes.len() as u64;
    bytes.extend_from_slice(text_bytes);
    let text_checksum = fnv1a64(text_bytes);

    struct GroupEntry {
        offset: u64,
        len: u64,
        checksum: u64,
    }
    let mut entries = Vec::with_capacity(tree.partitions().len());
    for part in tree.partitions() {
        if part.prefix.len() > MAX_PREFIX_LEN {
            return Err(corrupt(format!(
                "partition prefix of {} bytes exceeds the format maximum {}",
                part.prefix.len(),
                MAX_PREFIX_LEN
            )));
        }
        let offset = bytes.len() as u64;
        let mut seg = Vec::with_capacity(part.tree.serialized_size());
        write_flat_tree(&mut seg, &part.tree)?;
        let checksum = fnv1a64(&seg);
        bytes.extend_from_slice(&seg);
        entries.push(GroupEntry { offset, len: seg.len() as u64, checksum });
    }

    let toc_offset = bytes.len();
    let mut toc = Vec::new();
    toc.extend_from_slice(&generation.to_le_bytes());
    toc.extend_from_slice(&(text_len as u64).to_le_bytes());
    toc.push(if packed { FLAG_PACKED } else { 0 });
    toc.push(alen as u8);
    toc.extend_from_slice(&0u16.to_le_bytes());
    toc.extend_from_slice(&(entries.len() as u32).to_le_bytes());
    toc.extend_from_slice(alphabet.symbols());
    toc.extend_from_slice(&text_offset.to_le_bytes());
    toc.extend_from_slice(&(text_bytes.len() as u64).to_le_bytes());
    toc.extend_from_slice(&text_checksum.to_le_bytes());
    for (entry, part) in entries.iter().zip(tree.partitions()) {
        toc.extend_from_slice(&generation.to_le_bytes());
        toc.extend_from_slice(&entry.offset.to_le_bytes());
        toc.extend_from_slice(&entry.len.to_le_bytes());
        toc.extend_from_slice(&entry.checksum.to_le_bytes());
        toc.extend_from_slice(&(part.prefix.len() as u32).to_le_bytes());
        toc.extend_from_slice(&part.prefix);
    }

    let toc_checksum = fnv1a64(&toc);
    bytes.extend_from_slice(&toc);
    bytes.extend_from_slice(&(toc_offset as u64).to_le_bytes());
    bytes.extend_from_slice(&(toc.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&toc_checksum.to_le_bytes());
    bytes.extend_from_slice(FOOTER_MAGIC);
    Ok(EncodedCatalog { bytes, toc_offset })
}

/// How [`commit_catalog`] orders its durability operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommitProtocol {
    /// The correct protocol: segments fsynced, TOC+footer written and
    /// fsynced, rename, directory fsync.
    Sound,
    /// **Seeded bug for harness self-tests — never use in production.**
    /// Writes everything including the TOC, publishes the name (rename +
    /// directory fsync) and only then fsyncs the data: a crash in the
    /// publish window leaves a durable catalog with un-synced bytes.
    TocBeforeSegmentSync,
}

fn write_chunked(f: &mut dyn era_string_store::VfsFile, bytes: &[u8]) -> io::Result<()> {
    for chunk in bytes.chunks(COMMIT_CHUNK) {
        f.write_all(chunk)?;
    }
    Ok(())
}

/// Writes `bytes` to `path` through `vfs` with the per-file half of the
/// commit protocol: unique temp sibling → chunked writes → `sync_data` →
/// rename. The caller batches the directory fsync that makes the rename
/// durable ([`Vfs::sync_dir`]); on failure the temp sibling is removed on a
/// best-effort basis and `path` is untouched.
pub fn write_file_durable(vfs: &dyn Vfs, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = unique_sibling(path, "tmp");
    let result = (|| {
        let mut f = vfs.create(&tmp)?;
        write_chunked(f.as_mut(), bytes)?;
        f.sync_data()?;
        drop(f);
        vfs.rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

/// Commits an encoded catalog image to `path` through `vfs`.
///
/// The target is only ever replaced atomically (write temp → fsync →
/// rename → dir fsync); on failure the temporary sibling is removed on a
/// best-effort basis and whatever lived at `path` is untouched.
pub fn commit_catalog(
    path: &Path,
    vfs: &dyn Vfs,
    protocol: CommitProtocol,
    enc: &EncodedCatalog,
) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let tmp = unique_sibling(path, "cat");
    let result = (|| {
        let mut f = vfs.create(&tmp)?;
        match protocol {
            CommitProtocol::Sound => {
                write_chunked(f.as_mut(), &enc.bytes[..enc.toc_offset])?;
                f.sync_data()?;
                write_chunked(f.as_mut(), &enc.bytes[enc.toc_offset..])?;
                f.sync_data()?;
                drop(f);
                vfs.rename(&tmp, path)?;
                vfs.sync_dir(parent)
            }
            CommitProtocol::TocBeforeSegmentSync => {
                write_chunked(f.as_mut(), &enc.bytes)?;
                vfs.rename(&tmp, path)?;
                vfs.sync_dir(parent)?;
                // Too late: the name is already durable.
                f.sync_data()
            }
        }
    })();
    if result.is_err() {
        let _ = vfs.remove_file(&tmp);
    }
    result
}

/// Encodes and commits `tree` + `text` as a catalog at `path` in one call.
pub fn save_catalog(
    path: &Path,
    vfs: &dyn Vfs,
    protocol: CommitProtocol,
    generation: u64,
    text: TextSegment<'_>,
    alphabet: &Alphabet,
    tree: &PartitionedSuffixTree,
) -> io::Result<()> {
    let enc = encode_catalog(generation, text, alphabet, tree)?;
    commit_catalog(path, vfs, protocol, &enc)
}

/// A bounds-checked subslice; `what` names the field for diagnostics.
fn field<'a>(bytes: &'a [u8], at: usize, len: usize, what: &str) -> io::Result<&'a [u8]> {
    let end =
        at.checked_add(len).ok_or_else(|| corrupt(format!("catalog {what}: offset overflow")))?;
    bytes
        .get(at..end)
        .ok_or_else(|| corrupt(format!("catalog {what}: {len} bytes at {at} out of bounds")))
}

fn read_u64_at(bytes: &[u8], at: usize, what: &str) -> io::Result<u64> {
    let s = field(bytes, at, 8, what)?;
    let arr: [u8; 8] = s.try_into().map_err(|_| corrupt(format!("catalog {what}: short field")))?;
    Ok(u64::from_le_bytes(arr))
}

fn read_u32_at(bytes: &[u8], at: usize, what: &str) -> io::Result<u32> {
    let s = field(bytes, at, 4, what)?;
    let arr: [u8; 4] = s.try_into().map_err(|_| corrupt(format!("catalog {what}: short field")))?;
    Ok(u32::from_le_bytes(arr))
}

/// `usize::try_from` with a named diagnostic — the single door through which
/// header-declared sizes enter address arithmetic.
fn to_usize(v: u64, what: &str) -> io::Result<usize> {
    usize::try_from(v)
        .map_err(|_| corrupt(format!("catalog {what}: {v} does not fit this platform")))
}

/// Parses and fully verifies an `ERACAT1` image.
///
/// Verification is exhaustive by construction: the footer fixes the TOC, the
/// TOC's checksum covers every offset/length/checksum it declares, the
/// per-segment checksums cover the text and every group, and the contiguity
/// checks (text at [`HEADER_LEN`], groups adjacent, TOC ending exactly at
/// the footer) mean no byte of the file is outside some verified region.
/// Hostile lengths never drive allocation: every count is bounds-checked
/// against the real file before use.
pub fn parse_catalog(bytes: &[u8]) -> io::Result<Catalog> {
    if bytes.len() < HEADER_LEN + FOOTER_LEN {
        return Err(corrupt(format!(
            "catalog of {} bytes is shorter than header + footer",
            bytes.len()
        )));
    }
    if field(bytes, 0, 8, "header magic")? != CATALOG_MAGIC {
        return Err(corrupt("not an ERACAT1 catalog (bad header magic)".into()));
    }
    let version = read_u32_at(bytes, 8, "version")?;
    if version != CATALOG_VERSION {
        return Err(corrupt(format!("unsupported catalog version {version}")));
    }
    if read_u32_at(bytes, 12, "header reserved")? != 0 {
        return Err(corrupt("catalog header reserved field must be zero".into()));
    }

    // Footer: locates and authenticates the TOC.
    let footer_at = bytes.len() - FOOTER_LEN;
    if field(bytes, footer_at + 24, 8, "footer magic")? != FOOTER_MAGIC {
        return Err(corrupt("catalog footer magic missing (truncated or torn file)".into()));
    }
    let toc_offset = to_usize(read_u64_at(bytes, footer_at, "toc offset")?, "toc offset")?;
    let toc_len = to_usize(read_u64_at(bytes, footer_at + 8, "toc length")?, "toc length")?;
    let toc_checksum = read_u64_at(bytes, footer_at + 16, "toc checksum")?;
    let toc_end = toc_offset
        .checked_add(toc_len)
        .ok_or_else(|| corrupt("catalog toc bounds overflow".into()))?;
    if toc_offset < HEADER_LEN || toc_end != footer_at {
        return Err(corrupt(format!(
            "catalog toc [{toc_offset}, {toc_end}) must end exactly at the footer ({footer_at})"
        )));
    }
    let toc = field(bytes, toc_offset, toc_len, "toc")?;
    if fnv1a64(toc) != toc_checksum {
        return Err(corrupt("catalog toc checksum mismatch".into()));
    }

    // TOC fixed part.
    let generation = read_u64_at(toc, 0, "generation")?;
    let text_len_raw = read_u64_at(toc, 8, "text length")?;
    let text_len = to_usize(text_len_raw, "text length")?;
    let flags = *field(toc, 16, 1, "flags")?.first().unwrap_or(&0);
    let alen = usize::from(*field(toc, 17, 1, "alphabet length")?.first().unwrap_or(&0));
    let reserved = field(toc, 18, 2, "toc reserved")?;
    if reserved != [0, 0] {
        return Err(corrupt("catalog toc reserved field must be zero".into()));
    }
    let group_count = to_usize(u64::from(read_u32_at(toc, 20, "group count")?), "group count")?;
    if flags & !FLAG_PACKED != 0 {
        return Err(corrupt(format!("catalog flags {flags:#04x} set unknown bits")));
    }
    let packed = flags & FLAG_PACKED != 0;
    if alen == 0 {
        return Err(corrupt("catalog records no alphabet".into()));
    }
    if group_count == 0 {
        return Err(corrupt("catalog holds no partition groups".into()));
    }
    if text_len == 0 {
        return Err(corrupt("catalog text length is zero (must include the terminal)".into()));
    }
    let symbols = field(toc, 24, alen, "alphabet")?;
    let alphabet = builtin_or_custom(symbols)
        .map_err(|e| corrupt(format!("catalog alphabet invalid: {e}")))?;

    // Text segment: pinned to HEADER_LEN, inside [HEADER_LEN, toc_offset).
    let after_alpha =
        24usize.checked_add(alen).ok_or_else(|| corrupt("catalog toc alphabet overflow".into()))?;
    let text_offset = to_usize(read_u64_at(toc, after_alpha, "text offset")?, "text offset")?;
    let text_bytes_len = to_usize(read_u64_at(toc, after_alpha + 8, "text bytes")?, "text bytes")?;
    let text_checksum = read_u64_at(toc, after_alpha + 16, "text checksum")?;
    if text_offset != HEADER_LEN {
        return Err(corrupt(format!(
            "catalog text segment must start at {HEADER_LEN}, not {text_offset}"
        )));
    }
    let text_end = text_offset
        .checked_add(text_bytes_len)
        .ok_or_else(|| corrupt("catalog text bounds overflow".into()))?;
    if text_end > toc_offset {
        return Err(corrupt(format!(
            "catalog text segment [{text_offset}, {text_end}) overruns the toc at {toc_offset}"
        )));
    }
    let text_seg = field(bytes, text_offset, text_bytes_len, "text segment")?;
    if fnv1a64(text_seg) != text_checksum {
        return Err(corrupt("catalog text segment checksum mismatch".into()));
    }
    if packed {
        let want = packed_size(text_len - 1, alphabet.bits_per_symbol());
        if text_bytes_len != want {
            return Err(corrupt(format!(
                "packed text segment is {text_bytes_len} bytes, text length {text_len} needs {want}"
            )));
        }
    } else {
        if text_bytes_len != text_len {
            return Err(corrupt(format!(
                "raw text segment is {text_bytes_len} bytes but claims {text_len} symbols"
            )));
        }
        if text_seg.last() != Some(&era_string_store::TERMINAL) {
            return Err(corrupt("raw catalog text does not end with the terminal".into()));
        }
    }

    // Group segments: strictly contiguous from the text end to the TOC.
    let mut groups = Vec::with_capacity(group_count.min(MAX_PREALLOC));
    let mut cursor = text_end;
    let mut toc_at = after_alpha + 24;
    for i in 0..group_count {
        let generation = read_u64_at(toc, toc_at, "group generation")?;
        let offset = to_usize(read_u64_at(toc, toc_at + 8, "group offset")?, "group offset")?;
        let len = to_usize(read_u64_at(toc, toc_at + 16, "group length")?, "group length")?;
        let checksum = read_u64_at(toc, toc_at + 24, "group checksum")?;
        let prefix_len =
            to_usize(u64::from(read_u32_at(toc, toc_at + 32, "prefix length")?), "prefix length")?;
        if prefix_len > MAX_PREFIX_LEN {
            return Err(corrupt(format!(
                "group {i} claims a {prefix_len}-byte prefix (max {MAX_PREFIX_LEN})"
            )));
        }
        let prefix = field(toc, toc_at + 36, prefix_len, "group prefix")?.to_vec();
        toc_at = toc_at
            .checked_add(36 + prefix_len)
            .ok_or_else(|| corrupt("catalog toc group overflow".into()))?;

        if offset != cursor {
            return Err(corrupt(format!(
                "group {i} at {offset} leaves a gap after {cursor} (segments must be contiguous)"
            )));
        }
        let end =
            offset.checked_add(len).ok_or_else(|| corrupt(format!("group {i} bounds overflow")))?;
        if end > toc_offset {
            return Err(corrupt(format!(
                "group {i} segment [{offset}, {end}) overruns the toc at {toc_offset}"
            )));
        }
        let seg = field(bytes, offset, len, "group segment")?;
        if fnv1a64(seg) != checksum {
            return Err(corrupt(format!("group {i} segment checksum mismatch")));
        }
        let tree = read_flat_tree(&mut &seg[..])
            .map_err(|e| corrupt(format!("group {i} tree invalid: {e}")))?;
        if tree.serialized_size() != len {
            return Err(corrupt(format!(
                "group {i} segment has {} trailing bytes",
                len - tree.serialized_size().min(len)
            )));
        }
        if tree.text_len() != text_len {
            return Err(corrupt(format!(
                "group {i} tree covers a {}-symbol text, catalog says {text_len}",
                tree.text_len()
            )));
        }
        groups.push(CatalogGroup { generation, prefix, tree });
        cursor = end;
    }
    if cursor != toc_offset {
        return Err(corrupt(format!(
            "catalog has {} unaccounted bytes between the last group and the toc",
            toc_offset - cursor.min(toc_offset)
        )));
    }
    if toc_at != toc_len {
        return Err(corrupt(format!(
            "catalog toc has {} trailing bytes",
            toc_len - toc_at.min(toc_len)
        )));
    }

    let text = if packed {
        CatalogText::Packed(text_seg.to_vec())
    } else {
        CatalogText::Raw(text_seg.to_vec())
    };
    Ok(Catalog { generation, text_len, alphabet, text, groups })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::naive_suffix_tree;
    use era_string_store::{FaultVfs, PackedCodec, StdVfs};

    fn sample_tree() -> (Vec<u8>, PartitionedSuffixTree) {
        let text = b"GATTACAGATTACAGGATCC\0".to_vec();
        let tree = PartitionedSuffixTree::single(text.len(), naive_suffix_tree(&text));
        (text, tree)
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("era-catalog-{}-{}", name, std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("index.eracat")
    }

    #[test]
    fn raw_roundtrip_through_bytes() {
        let (text, tree) = sample_tree();
        let alpha = Alphabet::dna();
        let enc = encode_catalog(7, TextSegment::Raw(&text), &alpha, &tree).unwrap();
        let cat = parse_catalog(&enc.bytes).unwrap();
        assert_eq!(cat.generation, 7);
        assert_eq!(cat.text_len, text.len());
        assert!(!cat.is_packed());
        assert_eq!(cat.text, CatalogText::Raw(text.clone()));
        assert_eq!(cat.alphabet.symbols(), alpha.symbols());
        assert_eq!(cat.groups.len(), 1);
        assert_eq!(cat.groups[0].generation, 7);
        let back = cat.into_tree();
        assert_eq!(back, tree);
        assert_eq!(back.find_all(&text, b"GATTACA"), tree.find_all(&text, b"GATTACA"));
    }

    #[test]
    fn packed_roundtrip_through_bytes() {
        let (text, tree) = sample_tree();
        let alpha = Alphabet::dna();
        let payload = PackedCodec::new(&alpha).pack_body(&text[..text.len() - 1]).unwrap();
        let enc = encode_catalog(
            1,
            TextSegment::Packed { payload: &payload, text_len: text.len() },
            &alpha,
            &tree,
        )
        .unwrap();
        let cat = parse_catalog(&enc.bytes).unwrap();
        assert!(cat.is_packed());
        assert_eq!(cat.text, CatalogText::Packed(payload));
        assert_eq!(cat.alphabet.kind(), alpha.kind());
        assert_eq!(cat.into_tree(), tree);
    }

    #[test]
    fn commit_and_open_through_std_vfs() {
        let (text, tree) = sample_tree();
        let path = temp_path("std");
        save_catalog(
            &path,
            &StdVfs,
            CommitProtocol::Sound,
            3,
            TextSegment::Raw(&text),
            &Alphabet::dna(),
            &tree,
        )
        .unwrap();
        let cat = Catalog::open(&path).unwrap();
        assert_eq!(cat.generation, 3);
        assert_eq!(cat.into_tree(), tree);
        // The temp sibling is gone.
        let dir = path.parent().unwrap();
        let stray: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name() != "index.eracat")
            .collect();
        assert!(stray.is_empty(), "{stray:?}");
        std::fs::remove_dir_all(dir).unwrap();
    }

    #[test]
    fn sound_commit_keeps_old_catalog_on_any_precommit_crash() {
        let (text, tree) = sample_tree();
        let alpha = Alphabet::dna();
        let path = std::path::Path::new("/virtual/index.eracat");
        let old = encode_catalog(1, TextSegment::Raw(&text), &alpha, &tree).unwrap();
        let new = encode_catalog(2, TextSegment::Raw(&text), &alpha, &tree).unwrap();

        let probe = FaultVfs::new();
        commit_catalog(path, &probe, CommitProtocol::Sound, &old).unwrap();
        probe.record();
        commit_catalog(path, &probe, CommitProtocol::Sound, &new).unwrap();
        let n = probe.op_count();
        assert!(n >= 6, "expected several fault points, got {n}");

        for k in 0..n {
            let vfs = FaultVfs::new();
            commit_catalog(path, &vfs, CommitProtocol::Sound, &old).unwrap();
            vfs.plan_crash(k, era_string_store::CrashMode::DropUnsynced);
            assert!(commit_catalog(path, &vfs, CommitProtocol::Sound, &new).is_err());
            let durable = vfs.durable_bytes(path).expect("old catalog must survive");
            let cat = parse_catalog(&durable).expect("old catalog must stay parseable");
            assert_eq!(cat.generation, 1, "crash at {k} must keep the old generation");
        }
    }

    #[test]
    fn seeded_toc_before_sync_bug_is_observable() {
        let (text, tree) = sample_tree();
        let alpha = Alphabet::dna();
        let path = std::path::Path::new("/virtual/index.eracat");
        let enc = encode_catalog(9, TextSegment::Raw(&text), &alpha, &tree).unwrap();

        // Count the buggy save's ops, then crash right before its final
        // (too-late) sync_data: the name is durable, the bytes are not.
        let probe = FaultVfs::new();
        commit_catalog(path, &probe, CommitProtocol::TocBeforeSegmentSync, &enc).unwrap();
        let n = probe.op_count();
        let vfs = FaultVfs::new();
        vfs.plan_crash(n - 1, era_string_store::CrashMode::DropUnsynced);
        assert!(commit_catalog(path, &vfs, CommitProtocol::TocBeforeSegmentSync, &enc).is_err());
        let durable = vfs.durable_bytes(path).expect("the buggy protocol published the name");
        assert!(
            parse_catalog(&durable).is_err(),
            "published-but-unsynced catalog must not parse ({} durable bytes)",
            durable.len()
        );
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let (text, tree) = sample_tree();
        let enc = encode_catalog(1, TextSegment::Raw(&text), &Alphabet::dna(), &tree).unwrap();
        parse_catalog(&enc.bytes).unwrap();
        let mut bytes = enc.bytes.clone();
        for i in 0..bytes.len() {
            for bit in 0..8 {
                bytes[i] ^= 1 << bit;
                assert!(
                    parse_catalog(&bytes).is_err(),
                    "flipping bit {bit} of byte {i} went undetected"
                );
                bytes[i] ^= 1 << bit;
            }
        }
        parse_catalog(&bytes).unwrap();
    }

    #[test]
    fn every_truncation_is_detected() {
        let (text, tree) = sample_tree();
        let enc = encode_catalog(1, TextSegment::Raw(&text), &Alphabet::dna(), &tree).unwrap();
        for len in 0..enc.bytes.len() {
            assert!(
                parse_catalog(&enc.bytes[..len]).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn hostile_toc_lengths_do_not_allocate() {
        let (text, tree) = sample_tree();
        let enc = encode_catalog(1, TextSegment::Raw(&text), &Alphabet::dna(), &tree).unwrap();
        let mut bytes = enc.bytes.clone();
        // Hostile group count in the TOC: checksum guards it, but even with a
        // fixed-up checksum the count is bounds-checked against real bytes.
        let toc_off = enc.toc_offset;
        bytes[toc_off + 20..toc_off + 24].copy_from_slice(&u32::MAX.to_le_bytes());
        let toc_len = bytes.len() - FOOTER_LEN - toc_off;
        let sum = fnv1a64(&bytes[toc_off..toc_off + toc_len]);
        let fat = bytes.len() - FOOTER_LEN + 16;
        bytes[fat..fat + 8].copy_from_slice(&sum.to_le_bytes());
        assert!(parse_catalog(&bytes).is_err());
    }
}
