//! Structural tree statistics.

/// Summary statistics of a suffix (sub-)tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Total number of nodes including the root.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of internal nodes (including the root).
    pub internal: usize,
    /// Maximum string depth over all nodes (length of the deepest suffix).
    pub max_depth: u32,
    /// Maximum string depth over internal nodes — i.e. the length of the
    /// longest repeated substring indexed by the tree.
    pub max_internal_depth: u32,
}

impl TreeStats {
    /// Merges statistics of independent sub-trees (used to report on a
    /// partitioned tree).
    pub fn merge(&self, other: &TreeStats) -> TreeStats {
        TreeStats {
            nodes: self.nodes + other.nodes,
            leaves: self.leaves + other.leaves,
            internal: self.internal + other.internal,
            max_depth: self.max_depth.max(other.max_depth),
            max_internal_depth: self.max_internal_depth.max(other.max_internal_depth),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let a = TreeStats { nodes: 3, leaves: 2, internal: 1, max_depth: 5, max_internal_depth: 2 };
        let b = TreeStats { nodes: 7, leaves: 4, internal: 3, max_depth: 4, max_internal_depth: 3 };
        let m = a.merge(&b);
        assert_eq!(m.nodes, 10);
        assert_eq!(m.leaves, 6);
        assert_eq!(m.internal, 4);
        assert_eq!(m.max_depth, 5);
        assert_eq!(m.max_internal_depth, 3);
    }
}
