//! Structural tree statistics.

/// Summary statistics of a suffix (sub-)tree.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Total number of nodes including the root.
    pub nodes: usize,
    /// Number of leaves.
    pub leaves: usize,
    /// Number of internal nodes (including the root).
    pub internal: usize,
    /// Maximum string depth over all nodes (length of the deepest suffix).
    pub max_depth: u32,
    /// Maximum string depth over internal nodes — i.e. the length of the
    /// longest repeated substring indexed by the tree.
    pub max_internal_depth: u32,
    /// In-memory size of the node arena(s) in bytes. Exact for the flat
    /// serving layout (a fixed record per node); for the construction form it
    /// includes the per-node child vectors.
    pub arena_bytes: usize,
}

impl TreeStats {
    /// Merges statistics of independent sub-trees (used to report on a
    /// partitioned tree).
    pub fn merge(&self, other: &TreeStats) -> TreeStats {
        TreeStats {
            nodes: self.nodes + other.nodes,
            leaves: self.leaves + other.leaves,
            internal: self.internal + other.internal,
            max_depth: self.max_depth.max(other.max_depth),
            max_internal_depth: self.max_internal_depth.max(other.max_internal_depth),
            arena_bytes: self.arena_bytes + other.arena_bytes,
        }
    }

    /// Average bytes of arena per node — the layout-regression canary: the
    /// flat serving layout pins this at 16.0, the `Vec`-node construction
    /// form sits well above 48.
    pub fn bytes_per_node(&self) -> f64 {
        if self.nodes == 0 {
            return 0.0;
        }
        self.arena_bytes as f64 / self.nodes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_sums_and_maxes() {
        let a = TreeStats {
            nodes: 3,
            leaves: 2,
            internal: 1,
            max_depth: 5,
            max_internal_depth: 2,
            arena_bytes: 48,
        };
        let b = TreeStats {
            nodes: 7,
            leaves: 4,
            internal: 3,
            max_depth: 4,
            max_internal_depth: 3,
            arena_bytes: 112,
        };
        let m = a.merge(&b);
        assert_eq!(m.nodes, 10);
        assert_eq!(m.leaves, 6);
        assert_eq!(m.internal, 4);
        assert_eq!(m.max_depth, 5);
        assert_eq!(m.max_internal_depth, 3);
        assert_eq!(m.arena_bytes, 160);
        assert!((m.bytes_per_node() - 16.0).abs() < 1e-9);
    }

    #[test]
    fn bytes_per_node_of_empty_stats_is_zero() {
        assert_eq!(TreeStats::default().bytes_per_node(), 0.0);
    }
}
