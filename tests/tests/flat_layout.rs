//! The flat serving layout must be observationally identical to the Vec-node
//! construction form.
//!
//! Every sub-tree the pipeline serves is a [`FlatTree`] frozen from the
//! construction-form [`SuffixTree`]; `thaw` is the id-preserving inverse.
//! These property tests pin the equivalence end-to-end: identical
//! contains/count/locate answers through byte slices and through all four
//! store backends (`InMemoryStore`, `DiskStore`, `PackedMemoryStore`,
//! `PackedDiskStore`), a lossless freeze/thaw cycle, and a lossless
//! `ERAFLAT1` serialization round-trip.

use era::{ConstructionPipeline, EraConfig, SerialScheduler};
use era_string_store::{
    Alphabet, DiskStore, InMemoryStore, PackedDiskStore, PackedMemoryStore, StoreTextSource,
    StringStore,
};
use era_suffix_tree::{naive_suffix_tree, validate_flat_tree, FlatTree};
use era_tests::{scan_occurrences, terminated};
use proptest::collection;
use proptest::prelude::*;

fn config() -> EraConfig {
    EraConfig {
        memory_budget: 8 << 10,
        r_buffer_size: Some(512),
        input_buffer_size: 128,
        trie_area: 128,
        ..EraConfig::default()
    }
}

/// The alphabets whose stores are exercised: one per backend bit width class.
fn alphabets() -> Vec<Alphabet> {
    vec![Alphabet::dna(), Alphabet::protein(), Alphabet::english()]
}

/// Maps raw generator bytes onto alphabet symbols.
fn body_from(raw: &[u8], alphabet: &Alphabet) -> Vec<u8> {
    let symbols = alphabet.symbols();
    raw.iter().map(|&b| symbols[b as usize % symbols.len()]).collect()
}

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("era-flat-layout-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, max_shrink_iters: 0 })]

    /// Freezing renumbers nodes into DFS order, so thawing is lossless up to
    /// that canonical numbering: the thawed tree freezes back bit-identically
    /// and indexes the same suffixes, and the frozen form validates.
    #[test]
    fn freeze_thaw_is_lossless(
        which in 0usize..3,
        raw_bytes in collection::vec(any::<u8>(), 1..300),
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let text = terminated(&body);
        let tree = naive_suffix_tree(&text);
        let flat = FlatTree::freeze(&tree);
        validate_flat_tree(&flat, &text, Some(text.len())).expect("flat tree validates");
        let thawed = flat.thaw();
        prop_assert_eq!(FlatTree::freeze(&thawed), flat.clone());
        prop_assert_eq!(thawed.lexicographic_suffixes(), tree.lexicographic_suffixes());
        prop_assert_eq!(thawed.stats(), tree.stats());
    }

    /// The flat form answers contains/count/locate byte-identically to the
    /// Vec-node form it was frozen from, for present and absent patterns.
    #[test]
    fn flat_answers_match_construction_form(
        which in 0usize..3,
        raw_bytes in collection::vec(any::<u8>(), 1..300),
        pat_start in 0usize..300,
        pat_len in 1usize..12,
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let text = terminated(&body);
        let tree = naive_suffix_tree(&text);
        let flat = FlatTree::freeze(&tree);
        let start = pat_start % body.len();
        let patterns = [
            body[start..(start + pat_len).min(body.len())].to_vec(),
            vec![0u8],
            b"\x02never".to_vec(),
            Vec::new(),
        ];
        for p in &patterns {
            prop_assert_eq!(flat.contains(&text, p), tree.contains(&text, p));
            prop_assert_eq!(flat.count(&text, p), tree.count(&text, p));
            prop_assert_eq!(flat.find_all_sorted(&text, p), tree.find_all_sorted(&text, p));
            if !p.is_empty() {
                prop_assert_eq!(flat.find_all_sorted(&text, p), scan_occurrences(&text, p));
            }
        }
    }

    /// The full pipeline output (flat-served partitions) answers like the
    /// thawed Vec-node partitions through every store backend.
    #[test]
    fn all_backends_answer_like_the_thawed_form(
        raw_bytes in collection::vec(any::<u8>(), 4..250),
        pat_start in 0usize..250,
        pat_len in 1usize..10,
    ) {
        let alphabet = Alphabet::dna();
        let body = body_from(&raw_bytes, &alphabet);
        let text = terminated(&body);
        let store = InMemoryStore::from_body(&body, alphabet.clone())
            .unwrap()
            .with_block_size(64)
            .unwrap();
        let (tree, _) = ConstructionPipeline::new(&config())
            .run(&SerialScheduler::new(&store))
            .expect("build");
        let thawed: Vec<_> = tree.partitions().iter().map(|p| p.tree.thaw()).collect();

        let dir = scratch_dir();
        let tag = format!("{}-{}", raw_bytes.len(), pat_start);
        let disk =
            DiskStore::create(dir.join(format!("b-{tag}.era")), &body, alphabet.clone(), 64)
                .unwrap();
        let packed_mem =
            PackedMemoryStore::from_body(&body, alphabet.clone()).unwrap().with_block_size(64).unwrap();
        let packed_disk =
            PackedDiskStore::create(dir.join(format!("b-{tag}.erap")), &body, alphabet.clone(), 64)
                .unwrap();
        let backends: [&dyn StringStore; 4] = [&store, &disk, &packed_mem, &packed_disk];

        let start = pat_start % body.len();
        let patterns = [
            body[start..(start + pat_len).min(body.len())].to_vec(),
            vec![0u8],
            b"\x02never".to_vec(),
        ];
        for backend in backends {
            let source = StoreTextSource::with_window(backend, 64);
            for p in &patterns {
                let mut count = 0usize;
                let mut found: Vec<u32> = Vec::new();
                let mut contains = false;
                for (part, thaw) in tree.partitions().iter().zip(&thawed) {
                    prop_assert_eq!(
                        part.tree.try_contains(&source, p).unwrap(),
                        thaw.try_contains(&source, p).unwrap()
                    );
                    prop_assert_eq!(
                        part.tree.try_count(&source, p).unwrap(),
                        thaw.try_count(&source, p).unwrap()
                    );
                    let flat_occ = part.tree.try_find_all(&source, p).unwrap();
                    prop_assert_eq!(&flat_occ, &thaw.try_find_all(&source, p).unwrap());
                    contains |= !flat_occ.is_empty();
                    count += flat_occ.len();
                    found.extend(flat_occ);
                }
                found.sort_unstable();
                // The partition-level sums must equal the oracle and the
                // tree-level answers through the same backend.
                prop_assert_eq!(found, scan_occurrences(&text, p));
                prop_assert_eq!(contains, tree.try_contains(&source, p).unwrap());
                prop_assert_eq!(count, tree.try_count(&source, p).unwrap());
            }
        }
    }

    /// `ERAFLAT1` serialization round-trips every frozen tree bit-for-bit.
    #[test]
    fn flat_serialization_roundtrip(
        which in 0usize..3,
        raw_bytes in collection::vec(any::<u8>(), 1..300),
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let flat = FlatTree::freeze(&naive_suffix_tree(&terminated(&body)));
        let mut bytes = Vec::new();
        era_suffix_tree::serialize::write_flat_tree(&mut bytes, &flat).expect("write");
        prop_assert_eq!(bytes.len(), flat.serialized_size());
        let back = era_suffix_tree::serialize::read_flat_tree(&mut bytes.as_slice()).expect("read");
        prop_assert_eq!(back, flat);
    }
}
