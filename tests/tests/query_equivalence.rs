//! The store-backed `QueryEngine` must be observationally identical to the
//! in-memory `&[u8]` query path.
//!
//! Property tests pin byte-identical `contains`/`count`/`locate` answers
//! between the materialized-text path and engines over `InMemoryStore`,
//! `DiskStore`, `PackedMemoryStore` and `PackedDiskStore`, across
//! DNA/protein/English workloads and the awkward pattern shapes (empty,
//! terminal-adjacent, longer than the text, absent). A separate test asserts
//! the read-amplification acceptance criterion: a ≥64-pattern batch served
//! from a `PackedDiskStore` answers byte-identically to the in-memory
//! single-pattern API while fetching strictly fewer bytes than the raw-store
//! equivalent.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use era::{Query, QueryAnswer, QueryBatch, QueryEngine, SuffixIndex};
use era_string_store::{
    Alphabet, BlockCache, DiskStore, InMemoryStore, PackedDiskStore, PackedMemoryStore,
    StoreTextSource, StringStore, TextSource,
};
use era_workloads::{generate, DatasetKind, DatasetSpec};
use proptest::collection;
use proptest::prelude::*;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("era-query-equiv-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Unique file tag per materialized store, so proptest cases never collide.
fn next_tag() -> u64 {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    SEQ.fetch_add(1, Ordering::Relaxed)
}

fn alphabets() -> Vec<Alphabet> {
    vec![Alphabet::dna(), Alphabet::protein(), Alphabet::english()]
}

fn body_from(raw: &[u8], alphabet: &Alphabet) -> Vec<u8> {
    let symbols = alphabet.symbols();
    raw.iter().map(|&b| symbols[b as usize % symbols.len()]).collect()
}

/// The pattern shapes the issue calls out: empty, terminal-adjacent (suffixes
/// of the text, including one that crosses into the terminal symbol), longer
/// than the text, absent, plus ordinary substrings spread over the body.
fn patterns_for(text: &[u8]) -> Vec<Vec<u8>> {
    let body_len = text.len() - 1;
    let mut patterns: Vec<Vec<u8>> = vec![
        Vec::new(),
        vec![0u8],                                           // the terminal alone
        text[body_len.saturating_sub(2)..].to_vec(),         // suffix including the terminal
        text[body_len.saturating_sub(3)..body_len].to_vec(), // suffix of the body
        {
            let mut longer = text.to_vec();
            longer.extend_from_slice(b"XYZXYZ"); // longer than the text
            longer
        },
        b"\x02\x03\x04".to_vec(), // symbols outside every alphabet
    ];
    for i in 0..12usize {
        let len = 1 + (i * 5) % 9;
        let start = (i * 2654435761) % body_len.max(1);
        patterns.push(text[start..(start + len).min(body_len)].to_vec());
    }
    patterns
}

/// Materializes the four store backends over one body.
fn backends(body: &[u8], alphabet: &Alphabet) -> Vec<(&'static str, Box<dyn StringStore>)> {
    let dir = temp_dir();
    let tag = next_tag();
    let raw_disk =
        DiskStore::create(dir.join(format!("q-{tag}.era")), body, alphabet.clone(), 64).unwrap();
    let packed_disk =
        PackedDiskStore::create(dir.join(format!("q-{tag}.erap")), body, alphabet.clone(), 64)
            .unwrap();
    vec![
        (
            "in-memory",
            Box::new(
                InMemoryStore::from_body(body, alphabet.clone())
                    .unwrap()
                    .with_block_size(64)
                    .unwrap(),
            ),
        ),
        (
            "packed-memory",
            Box::new(
                PackedMemoryStore::from_body(body, alphabet.clone())
                    .unwrap()
                    .with_block_size(64)
                    .unwrap(),
            ),
        ),
        ("disk", Box::new(raw_disk)),
        ("packed-disk", Box::new(packed_disk)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, max_shrink_iters: 0 })]

    #[test]
    fn engine_over_every_backend_matches_the_in_memory_path(
        which in 0usize..3,
        raw_bytes in collection::vec(any::<u8>(), 1..300),
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let index = SuffixIndex::builder()
            .memory_budget(1 << 20)
            .build_from_bytes_with_alphabet(&body, alphabet.clone())
            .expect("construction succeeds");
        let patterns = patterns_for(index.text());

        // The reference: the in-memory `&[u8]` single-query path.
        let expected: Vec<(Vec<usize>, usize, bool)> = patterns
            .iter()
            .map(|p| (index.find_all(p), index.count(p), index.contains(p)))
            .collect();

        for (name, store) in backends(&body, &alphabet) {
            let engine = QueryEngine::over_store(index.tree(), store.as_ref());
            for (p, (find, count, contains)) in patterns.iter().zip(&expected) {
                let got = engine.find_all(p).unwrap();
                prop_assert!(&got == find, "find_all over {} diverged for {:?}: {:?}", name, p, got);
                prop_assert!(engine.count(p).unwrap() == *count, "count over {}", name);
                prop_assert!(engine.contains(p).unwrap() == *contains, "contains over {}", name);
            }
            // The whole set again, as one batch (exercises routing + merge).
            let batch: QueryBatch = patterns.iter().map(|p| Query::locate(p.clone())).collect();
            let response = engine.run(&batch).expect("batch succeeds");
            for ((answer, (find, _, _)), p) in
                response.results.iter().zip(&expected).zip(&patterns)
            {
                prop_assert!(
                    answer == &QueryAnswer::Locate(find.clone()),
                    "batched locate over {} diverged for {:?}: {:?}",
                    name,
                    p,
                    answer
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, max_shrink_iters: 0 })]

    /// Window and cache boundaries must be invisible: patterns *longer than
    /// the window*, hops that straddle cache-block and cache-shard
    /// boundaries, and tiny capacities that force evictions all answer
    /// byte-identically with the cache on and off, across all four store
    /// backends.
    #[test]
    fn cache_and_window_boundaries_are_invisible(
        which in 0usize..3,
        raw_bytes in collection::vec(any::<u8>(), 8..300),
        window in 1usize..40,
        block_symbols in 1usize..40,
        capacity in 16usize..600,
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let index = SuffixIndex::builder()
            .memory_budget(1 << 20)
            .build_from_bytes_with_alphabet(&body, alphabet.clone())
            .expect("construction succeeds");
        let text = index.text().to_vec();

        // Longer than the window by construction (the window is < 40): the
        // whole text, every suffix hop, plus the usual awkward shapes.
        let mut patterns = patterns_for(&text);
        patterns.push(text.clone());
        for i in 0..6usize {
            let start = (i * 37) % (text.len() - 1);
            patterns.push(text[start..].to_vec());
        }

        for (name, store) in backends(&body, &alphabet) {
            // One shared cache for both sources: the second one replays the
            // first one's blocks (the cross-worker sharing path).
            let cache = Arc::new(BlockCache::with_layout(capacity, block_symbols, 3));
            let plain = StoreTextSource::with_window(store.as_ref(), window);
            let cached =
                StoreTextSource::with_window(store.as_ref(), window).cached(Arc::clone(&cache));
            let warm =
                StoreTextSource::with_window(store.as_ref(), window).cached(Arc::clone(&cache));
            for p in &patterns {
                let expect = index.tree().try_find_all(&plain, p).expect("plain source");
                let got = index.tree().try_find_all(&cached, p).expect("cached source");
                prop_assert!(expect == got, "cached find_all over {} diverged for {:?}", name, p);
                let replay = index.tree().try_find_all(&warm, p).expect("warm source");
                prop_assert!(expect == replay, "warm find_all over {} diverged for {:?}", name, p);
                prop_assert!(
                    index.tree().try_count(&cached, p).expect("count") == expect.len(),
                    "cached count over {name} diverged"
                );
            }
            // Raw symbol hops across block/shard boundaries agree too.
            for pos in (0..text.len()).step_by(7) {
                prop_assert!(cached.symbol_at(pos).unwrap() == text[pos], "symbol at {pos} over {name}");
            }
            prop_assert!(cache.bytes() <= capacity + 3 * block_symbols,
                "cache over capacity bound on {name}");
        }
    }
}

/// Acceptance criterion of the query redesign: a batch of ≥64 patterns
/// through the `QueryEngine` against a `PackedDiskStore` answers
/// byte-identically to the in-memory single-pattern API, while the packed
/// store's counters show strictly fewer bytes read than the raw-store
/// equivalent.
#[test]
fn packed_batch_matches_in_memory_api_with_fewer_bytes_read() {
    let body = generate(&DatasetSpec::new(DatasetKind::UniformDna, 64 << 10, 7));
    let index = SuffixIndex::builder()
        .memory_budget(1 << 20)
        .build_from_bytes_with_alphabet(&body, Alphabet::dna())
        .expect("construction succeeds");

    // ≥64 patterns: sampled substrings plus the awkward shapes.
    let mut patterns = patterns_for(index.text());
    for i in 0..80usize {
        let len = 3 + (i * 11) % 21;
        let start = (i * 40503) % (body.len() - len);
        patterns.push(body[start..start + len].to_vec());
    }
    assert!(patterns.len() >= 64);
    let batch: QueryBatch = patterns.iter().map(|p| Query::locate(p.clone())).collect();

    let dir = temp_dir();
    let raw = DiskStore::create(dir.join("accept.era"), &body, Alphabet::dna(), 4 << 10).unwrap();
    let packed =
        PackedDiskStore::create(dir.join("accept.erap"), &body, Alphabet::dna(), 4 << 10).unwrap();

    let raw_response = QueryEngine::over_store(index.tree(), &raw).run(&batch).expect("raw batch");
    let packed_response =
        QueryEngine::over_store(index.tree(), &packed).run(&batch).expect("packed batch");

    // Byte-identical to the in-memory single-pattern API.
    for ((p, raw_answer), packed_answer) in
        patterns.iter().zip(&raw_response.results).zip(&packed_response.results)
    {
        let expected = QueryAnswer::Locate(index.find_all(p));
        assert_eq!(packed_answer, &expected, "packed diverged for {p:?}");
        assert_eq!(raw_answer, &expected, "raw diverged for {p:?}");
    }

    // Strictly fewer bytes read from the packed store for the same batch.
    let raw_bytes = raw_response.stats.io.bytes_read;
    let packed_bytes = packed_response.stats.io.bytes_read;
    assert!(raw_bytes > 0 && packed_bytes > 0, "both batches must be served from their stores");
    assert!(
        packed_bytes < raw_bytes,
        "packed batch read {packed_bytes} bytes, raw read {raw_bytes}"
    );
    // 2-bit DNA: expect close to the 4x packing ratio, leave slack for
    // window-alignment effects.
    assert!(
        packed_bytes * 3 < raw_bytes,
        "packed batch should read ~4x fewer bytes ({packed_bytes} vs {raw_bytes})"
    );
}

/// Acceptance criterion of the decoded-block cache: re-running an identical
/// batch against a `PackedDiskStore`-backed engine with a warm cache reads
/// ≥10x fewer store bytes than the cold run, while the answers stay
/// byte-identical cache-on vs cache-off (run by the CI `packed-io` job).
#[test]
fn warm_cache_rerun_reads_10x_fewer_bytes_with_identical_answers() {
    let body = generate(&DatasetSpec::new(DatasetKind::UniformDna, 64 << 10, 19));
    let index = SuffixIndex::builder()
        .memory_budget(1 << 20)
        .build_from_bytes_with_alphabet(&body, Alphabet::dna())
        .expect("construction succeeds");
    let mut patterns = patterns_for(index.text());
    for i in 0..96usize {
        let len = 4 + (i * 13) % 24;
        let start = (i * 52361) % (body.len() - len);
        patterns.push(body[start..start + len].to_vec());
    }
    let batch: QueryBatch = patterns.iter().map(|p| Query::locate(p.clone())).collect();

    let dir = temp_dir();
    let packed =
        PackedDiskStore::create(dir.join("warm.erap"), &body, Alphabet::dna(), 4 << 10).unwrap();

    // Cache off: the reference answers, pure store I/O.
    let uncached = QueryEngine::over_store(index.tree(), &packed).run(&batch).expect("uncached");

    // One cached engine, the identical batch twice: cold fills, warm replays.
    let engine = QueryEngine::over_store(index.tree(), &packed).cache(8 << 20);
    let cold = engine.run(&batch).expect("cold batch");
    let warm = engine.run(&batch).expect("warm batch");

    assert_eq!(cold.results, uncached.results, "cache-on answers must match cache-off");
    assert_eq!(warm.results, uncached.results, "warm answers must match cache-off");

    let (cold_bytes, warm_bytes) = (cold.stats.io.bytes_read, warm.stats.io.bytes_read);
    assert!(cold_bytes > 0, "the cold run must be served from the store");
    assert!(
        warm_bytes * 10 <= cold_bytes,
        "warm re-run must read >=10x fewer store bytes (cold {cold_bytes}, warm {warm_bytes})"
    );
    assert!(warm.stats.cache.hits > 0, "warm run must be cache-served");
    assert_eq!(warm.stats.cache.misses, 0, "8 MiB of cache holds the whole 64 KiB text");

    // The same holds through the multithreaded pool: workers share the cache.
    let parallel_warm = engine.threads(4).run(&batch).expect("parallel warm batch");
    assert_eq!(parallel_warm.results, uncached.results);
    assert!(parallel_warm.stats.io.bytes_read * 10 <= cold_bytes);
}

/// The batched engine and the multithreaded batched engine agree with the
/// serial one on a store backend.
#[test]
fn parallel_store_batches_are_deterministic() {
    let body = generate(&DatasetSpec::new(DatasetKind::Protein, 16 << 10, 11));
    let index = SuffixIndex::builder()
        .memory_budget(1 << 20)
        .build_from_bytes_with_alphabet(&body, Alphabet::protein())
        .expect("construction succeeds");
    let mut patterns = patterns_for(index.text());
    for i in 0..64usize {
        let len = 2 + i % 13;
        let start = (i * 7919) % (body.len() - len);
        patterns.push(body[start..start + len].to_vec());
    }
    let batch: QueryBatch = patterns.iter().map(|p| Query::locate(p.clone())).collect();
    let packed = PackedMemoryStore::from_body(&body, Alphabet::protein()).unwrap();
    let serial = QueryEngine::over_store(index.tree(), &packed).run(&batch).unwrap();
    let parallel = QueryEngine::over_store(index.tree(), &packed).threads(4).run(&batch).unwrap();
    assert_eq!(serial.results, parallel.results);
    assert_eq!(serial.results.len(), batch.len());
}
