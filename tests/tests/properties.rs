//! Property-based tests (proptest) over the core invariants:
//!
//! * ERA builds exactly the suffix tree of its input, for arbitrary strings,
//!   alphabets and memory budgets;
//! * the lexicographic leaf order equals an independently computed suffix
//!   array;
//! * queries agree with brute-force scanning;
//! * the suffix-array substrate agrees with direct sorting;
//! * serialization round-trips.

use era::{EraConfig, HorizontalMethod, RangePolicy};
use era_string_store::InMemoryStore;
use era_suffix_array::{lcp_kasai, suffix_array};
use era_suffix_tree::{validate_partitioned, validate_suffix_tree};
use era_tests::{scan_occurrences, terminated};
use proptest::prelude::*;

/// Arbitrary bodies over small alphabets (small alphabets maximise repeat
/// structure and therefore stress the branching logic hardest).
fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
    let dna = proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        1..200,
    );
    let binary = proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 1..200);
    let ascii = proptest::collection::vec(33u8..127u8, 1..120);
    prop_oneof![dna, binary, ascii]
}

fn config_strategy() -> impl Strategy<Value = EraConfig> {
    (
        2_000usize..40_000,
        1usize..64,
        prop_oneof![Just(RangePolicy::Elastic), (1usize..40).prop_map(RangePolicy::Fixed)],
        any::<bool>(),
        any::<bool>(),
        prop_oneof![Just(HorizontalMethod::StringAndMemory), Just(HorizontalMethod::StringOnly)],
    )
        .prop_map(|(budget, r_kb, range_policy, grouping, seek, horizontal)| EraConfig {
            memory_budget: budget,
            r_buffer_size: Some(r_kb * 16),
            input_buffer_size: 64,
            trie_area: 64,
            range_policy,
            group_virtual_trees: grouping,
            seek_optimization: seek,
            horizontal,
            min_range: 1,
            ..EraConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn era_builds_the_suffix_tree_of_arbitrary_strings(
        body in body_strategy(),
        config in config_strategy(),
    ) {
        let text = terminated(&body);
        let store = InMemoryStore::from_body_inferred(&body).unwrap()
            .with_block_size(32).unwrap();
        let (tree, report) = era::construct_serial(&store, &config).unwrap();
        // Structural invariants and exact leaf coverage.
        validate_partitioned(&tree, &text).unwrap();
        prop_assert_eq!(tree.leaf_count(), text.len());
        // Lexicographic leaf order == suffix array computed independently.
        let sa = suffix_array(&text);
        prop_assert_eq!(tree.lexicographic_suffixes(), sa);
        // The report is self-consistent.
        prop_assert!(report.partitions >= 1);
        prop_assert!(report.virtual_trees <= report.partitions);
        prop_assert!(report.io.bytes_read > 0);
    }

    #[test]
    fn queries_agree_with_scanning(
        body in body_strategy(),
        pattern in proptest::collection::vec(any::<u8>(), 0..8),
    ) {
        let text = terminated(&body);
        let store = InMemoryStore::from_body_inferred(&body).unwrap();
        let config = EraConfig {
            memory_budget: 16 << 10,
            r_buffer_size: Some(512),
            input_buffer_size: 64,
            trie_area: 64,
            ..EraConfig::default()
        };
        let (tree, _) = era::construct_serial(&store, &config).unwrap();
        // Query with a pattern sampled from the text (guaranteed hits) and the
        // arbitrary pattern (usually a miss).
        let sampled: Vec<u8> = if body.len() >= 3 {
            body[body.len() / 3..(body.len() / 3 + 3).min(body.len())].to_vec()
        } else {
            body.clone()
        };
        for p in [sampled.as_slice(), pattern.as_slice()] {
            let expected = scan_occurrences(&text, p);
            prop_assert_eq!(tree.find_all(&text, p), expected.clone());
            prop_assert_eq!(tree.count(&text, p), expected.len());
        }
    }

    #[test]
    fn suffix_array_substrate_matches_direct_sort(body in body_strategy()) {
        let text = terminated(&body);
        let sa = suffix_array(&text);
        let mut direct: Vec<u32> = (0..text.len() as u32).collect();
        direct.sort_by(|&a, &b| text[a as usize..].cmp(&text[b as usize..]));
        prop_assert_eq!(&sa, &direct);
        // LCP sanity: lcp[i] is the exact common-prefix length.
        let lcp = lcp_kasai(&text, &sa);
        for i in 1..sa.len() {
            let a = &text[sa[i - 1] as usize..];
            let b = &text[sa[i] as usize..];
            let expect = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count() as u32;
            prop_assert_eq!(lcp[i], expect);
        }
    }

    #[test]
    fn naive_reference_tree_is_always_valid(body in body_strategy()) {
        let text = terminated(&body);
        let tree = era_suffix_tree::naive_suffix_tree(&text);
        validate_suffix_tree(&tree, &text, Some(text.len())).unwrap();
    }

    #[test]
    fn tree_serialization_roundtrips(body in body_strategy()) {
        let text = terminated(&body);
        let tree = era_suffix_tree::naive_suffix_tree(&text);
        let mut buf = Vec::new();
        era_suffix_tree::serialize::write_tree(&mut buf, &tree).unwrap();
        let back = era_suffix_tree::serialize::read_tree(&mut buf.as_slice()).unwrap();
        prop_assert_eq!(tree, back);
    }

    #[test]
    fn longest_repeated_substring_is_correct(body in body_strategy()) {
        let text = terminated(&body);
        let store = InMemoryStore::from_body_inferred(&body).unwrap();
        let config = EraConfig {
            memory_budget: 8 << 10,
            r_buffer_size: Some(512),
            input_buffer_size: 64,
            trie_area: 64,
            ..EraConfig::default()
        };
        let (tree, _) = era::construct_serial(&store, &config).unwrap();
        match tree.longest_repeated_substring(&text) {
            None => {
                // No substring of length >= 1 repeats.
                for i in 0..body.len() {
                    let count = scan_occurrences(&text, &body[i..i + 1]).len();
                    prop_assert!(count <= 1, "symbol {:?} repeats", body[i]);
                }
            }
            Some((off, len)) => {
                let substr = &text[off as usize..(off + len) as usize];
                // It really does occur at least twice...
                prop_assert!(scan_occurrences(&text, substr).len() >= 2);
                // ...and nothing longer does (check all substrings one longer).
                let longer = len as usize + 1;
                for i in 0..body.len().saturating_sub(longer - 1) {
                    let candidate = &text[i..i + longer];
                    prop_assert!(
                        scan_occurrences(&text, candidate).len() < 2,
                        "a longer repeat {:?} exists", candidate
                    );
                }
            }
        }
    }
}
