//! Property test: the `ERACAT1` catalog round-trips arbitrary texts across
//! every store backend, answering byte-identically to the in-memory build
//! *and* to the scattered directory format.
//!
//! The four persistence-relevant backends are exercised: raw and packed
//! builds, each constructed from memory (`build_from_bytes` →
//! `InMemoryStore`/`PackedMemoryStore`) and from disk (`build_from_path` →
//! `DiskStore`/`PackedDiskStore`). For each the index is saved both as a
//! single-file catalog and in the scattered layout, reopened from both, and
//! `contains`/`count`/`locate` must agree exactly on every probe.

use era::SuffixIndex;
use era_string_store::Alphabet;
use proptest::prelude::*;

/// Arbitrary bodies over small alphabets (repeat-heavy inputs stress the
/// partitioning and the packed codec hardest). No byte 0: that is the
/// out-of-band terminal.
fn body_strategy() -> impl Strategy<Value = Vec<u8>> {
    let dna = proptest::collection::vec(
        prop_oneof![Just(b'A'), Just(b'C'), Just(b'G'), Just(b'T')],
        1..160,
    );
    let binary = proptest::collection::vec(prop_oneof![Just(b'a'), Just(b'b')], 1..160);
    let ascii = proptest::collection::vec(33u8..127u8, 1..100);
    prop_oneof![dna, binary, ascii]
}

/// Deterministic probes: substrings at fixed fractions of the body (always
/// present), plus one pattern guaranteed absent.
fn probes(body: &[u8]) -> Vec<Vec<u8>> {
    let mut probes = Vec::new();
    for (num, den, len) in [(0usize, 1usize, 3usize), (1, 2, 5), (2, 3, 8), (3, 4, 2)] {
        let start = (body.len() * num / den).min(body.len() - 1);
        let len = len.min(body.len() - start);
        probes.push(body[start..start + len].to_vec());
    }
    probes.push(vec![1u8, 2, 3]); // never occurs: 1..=3 are not in any alphabet here
    probes
}

fn assert_identical_answers(reopened: &SuffixIndex, reference: &SuffixIndex, probes: &[Vec<u8>]) {
    for probe in probes {
        assert_eq!(reopened.contains(probe), reference.contains(probe), "probe {probe:?}");
        assert_eq!(reopened.count(probe), reference.count(probe), "probe {probe:?}");
        assert_eq!(reopened.find_all(probe), reference.find_all(probe), "probe {probe:?}");
    }
    assert_eq!(reopened.text(), reference.text());
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn catalog_round_trips_byte_identically_across_backends(
        body in body_strategy(),
        packed in any::<bool>(),
        from_disk in any::<bool>(),
    ) {
        let scratch = std::env::temp_dir().join(format!(
            "era-catalog-prop-{}-{packed}-{from_disk}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&scratch);
        std::fs::create_dir_all(&scratch).unwrap();

        // Build through the requested backend family.
        let builder = SuffixIndex::builder().memory_budget(1 << 20).packed(packed);
        let built = if from_disk {
            let input = scratch.join("input.era");
            let mut text = body.clone();
            text.push(0);
            std::fs::write(&input, &text).unwrap();
            builder.build_from_path(&input, Alphabet::infer(&body).unwrap()).unwrap()
        } else {
            builder.build_from_bytes(&body).unwrap()
        };
        prop_assert_eq!(built.is_packed(), packed);
        let probes = probes(&body);

        // Single-file catalog round-trip.
        let catalog = scratch.join("index.eracat");
        built.save_to_file(&catalog).unwrap();
        let from_catalog = SuffixIndex::open_file(&catalog).unwrap();
        prop_assert_eq!(from_catalog.is_packed(), packed);
        assert_identical_answers(&from_catalog, &built, &probes);

        // Scattered directory round-trip, and catalog vs directory.
        let dir = scratch.join("scattered");
        built.save_to_dir_scattered(&dir).unwrap();
        let from_dir = SuffixIndex::load_from_dir(&dir).unwrap();
        prop_assert_eq!(from_dir.is_packed(), packed);
        assert_identical_answers(&from_dir, &built, &probes);
        assert_identical_answers(&from_catalog, &from_dir, &probes);

        std::fs::remove_dir_all(&scratch).unwrap();
    }
}
