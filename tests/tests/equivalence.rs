//! Cross-algorithm equivalence: ERA (all configurations), WaveFront, B²ST,
//! Trellis and Ukkonen must index exactly the same suffixes in the same
//! lexicographic order, and answer queries identically to a brute-force scan.

use era::{EraConfig, HorizontalMethod, RangePolicy};
use era_baselines::{
    b2st_construct, trellis_construct, ukkonen_construct, wavefront_construct, B2stConfig,
    TrellisConfig, WaveFrontConfig,
};
use era_string_store::InMemoryStore;
use era_suffix_tree::{validate_partitioned, PartitionedSuffixTree};
use era_tests::{corpus, scan_occurrences, small_block_store, terminated};
use era_workloads::{english_like, genome_like, protein_like};

fn era_config() -> EraConfig {
    EraConfig {
        memory_budget: 8 << 10,
        r_buffer_size: Some(512),
        input_buffer_size: 128,
        trie_area: 128,
        ..EraConfig::default()
    }
}

fn all_constructions(body: &[u8]) -> Vec<(String, PartitionedSuffixTree)> {
    let mut out = Vec::new();
    let store = small_block_store(body);
    out.push(("era".into(), era::construct_serial(&store, &era_config()).unwrap().0));
    let store = small_block_store(body);
    let cfg = EraConfig { horizontal: HorizontalMethod::StringOnly, ..era_config() };
    out.push(("era-str".into(), era::construct_serial(&store, &cfg).unwrap().0));
    let store = small_block_store(body);
    out.push((
        "wavefront".into(),
        wavefront_construct(
            &store,
            &WaveFrontConfig { memory_budget: 8 << 10, range_symbols: 8, ..Default::default() },
        )
        .unwrap()
        .0,
    ));
    let store = small_block_store(body);
    out.push((
        "b2st".into(),
        b2st_construct(&store, &B2stConfig { memory_budget: 0, partition_bytes: Some(16) })
            .unwrap()
            .0,
    ));
    let store = small_block_store(body);
    out.push((
        "trellis".into(),
        trellis_construct(
            &store,
            &TrellisConfig { memory_budget: 0, partition_bytes: Some(16), spill_dir: None },
        )
        .unwrap()
        .0,
    ));
    let store = small_block_store(body);
    out.push(("ukkonen".into(), ukkonen_construct(&store).unwrap().0));
    out
}

#[test]
fn all_algorithms_agree_on_the_corpus() {
    for body in corpus() {
        let text = terminated(&body);
        let trees = all_constructions(&body);
        let expected_order = trees[0].1.lexicographic_suffixes();
        for (name, tree) in &trees {
            validate_partitioned(tree, &text).unwrap_or_else(|e| {
                panic!(
                    "{name} produced an invalid tree for {:?}: {e}",
                    String::from_utf8_lossy(&body)
                )
            });
            assert_eq!(tree.leaf_count(), text.len(), "{name}");
            assert_eq!(
                tree.lexicographic_suffixes(),
                expected_order,
                "{name} disagrees on {:?}",
                String::from_utf8_lossy(&body)
            );
        }
    }
}

#[test]
fn queries_agree_with_scanning_for_every_algorithm() {
    let body = b"GATTACAGATTACAGGATCCGATTACATTTTACAGAGATTACCA";
    let text = terminated(body);
    let patterns: Vec<&[u8]> =
        vec![b"GATTACA", b"TT", b"A", b"CAGG", b"GATTACAGATTACAGG", b"XYZ", b""];
    for (name, tree) in all_constructions(body) {
        for pattern in &patterns {
            let expected = scan_occurrences(&text, pattern);
            let got = tree.find_all(&text, pattern);
            assert_eq!(got, expected, "{name} pattern {:?}", String::from_utf8_lossy(pattern));
            assert_eq!(tree.count(&text, pattern), expected.len(), "{name}");
        }
    }
}

#[test]
fn workload_generators_build_correctly_across_algorithms() {
    // One realistic workload per alphabet, compared against ERA as reference.
    for body in [genome_like(3000, 1), protein_like(2000, 2), english_like(2500, 3)] {
        let text = terminated(&body);
        let store = small_block_store(&body);
        let (era_tree, _) = era::construct_serial(&store, &era_config()).unwrap();
        validate_partitioned(&era_tree, &text).unwrap();

        let store = small_block_store(&body);
        let (wf_tree, _) = wavefront_construct(
            &store,
            &WaveFrontConfig { memory_budget: 8 << 10, ..Default::default() },
        )
        .unwrap();
        assert_eq!(era_tree.lexicographic_suffixes(), wf_tree.lexicographic_suffixes());

        let store = small_block_store(&body);
        let (uk_tree, _) = ukkonen_construct(&store).unwrap();
        assert_eq!(era_tree.lexicographic_suffixes(), uk_tree.lexicographic_suffixes());
    }
}

#[test]
fn range_policies_and_seek_optimisation_do_not_change_the_result() {
    let body = genome_like(4000, 9);
    let text = terminated(&body);
    let mut reference: Option<Vec<u32>> = None;
    for policy in [RangePolicy::Elastic, RangePolicy::Fixed(16), RangePolicy::Fixed(3)] {
        for seek in [true, false] {
            for grouping in [true, false] {
                let store = small_block_store(&body);
                let cfg = EraConfig {
                    range_policy: policy,
                    seek_optimization: seek,
                    group_virtual_trees: grouping,
                    ..era_config()
                };
                let (tree, _) = era::construct_serial(&store, &cfg).unwrap();
                validate_partitioned(&tree, &text).unwrap();
                let order = tree.lexicographic_suffixes();
                match &reference {
                    None => reference = Some(order),
                    Some(r) => assert_eq!(
                        &order, r,
                        "policy {policy:?} seek {seek} grouping {grouping} changed the tree"
                    ),
                }
            }
        }
    }
}

#[test]
fn era_handles_memory_budgets_from_tiny_to_huge() {
    let body = genome_like(3000, 21);
    let text = terminated(&body);
    for budget in [3 << 10, 8 << 10, 64 << 10, 8 << 20] {
        let store = small_block_store(&body);
        let cfg = EraConfig {
            memory_budget: budget,
            r_buffer_size: Some(512),
            input_buffer_size: 128,
            trie_area: 128,
            ..EraConfig::default()
        };
        let (tree, report) = era::construct_serial(&store, &cfg).unwrap();
        validate_partitioned(&tree, &text).unwrap();
        assert_eq!(tree.leaf_count(), text.len(), "budget {budget}");
        assert!(report.fm >= 1);
    }
}

#[test]
fn disk_store_and_memory_store_produce_identical_trees() {
    let body = genome_like(2500, 33);
    let text = terminated(&body);
    let dir = std::env::temp_dir().join(format!("era-it-disk-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let disk = era_string_store::DiskStore::create_in_dir(
        &dir,
        "equivalence",
        &body,
        era_string_store::Alphabet::dna(),
    )
    .unwrap();
    let (from_disk, _) = era::construct_serial(&disk, &era_config()).unwrap();
    let mem = InMemoryStore::from_body(&body, era_string_store::Alphabet::dna()).unwrap();
    let (from_mem, _) = era::construct_serial(&mem, &era_config()).unwrap();
    validate_partitioned(&from_disk, &text).unwrap();
    assert_eq!(from_disk.lexicographic_suffixes(), from_mem.lexicographic_suffixes());
}
