//! Packed `DiskStore` under the full pipeline: identical trees, ~4x fewer
//! bytes.
//!
//! Construction over a packed DNA file must produce a byte-identical
//! `PartitionedSuffixTree` to the raw file under all three `GroupScheduler`s,
//! while `IoStats.bytes_read` drops by at least 3x (2-bit DNA packs 4x
//! denser; the floor leaves headroom for header and partial-block effects).
//!
//! The `#[ignore]`d test repeats the check on a multi-MB workload — CI runs
//! it in release mode (see `.github/workflows/ci.yml`, job `packed-io`),
//! seeding the bigger-than-RAM read-amplification guard.

use std::path::PathBuf;

use era::{
    ConstructionPipeline, ConstructionReport, EraConfig, SerialScheduler, SharedMemoryScheduler,
    SharedNothingOptions, SharedNothingScheduler,
};
use era_string_store::{Alphabet, DiskStore, PackedDiskStore, StringStore};
use era_suffix_tree::PartitionedSuffixTree;
use era_tests::tree_bytes;
use era_workloads::genome_like;

const BLOCK: usize = 4 << 10;

fn config(budget: usize) -> EraConfig {
    EraConfig {
        memory_budget: budget,
        input_buffer_size: 4 << 10,
        trie_area: 1 << 10,
        ..EraConfig::default()
    }
}

struct Dataset {
    dir: PathBuf,
    raw_path: PathBuf,
    packed_path: PathBuf,
}

impl Dataset {
    fn materialise(tag: &str, body: &[u8]) -> Dataset {
        let dir = std::env::temp_dir().join(format!("era-packed-io-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let raw_path = dir.join("dna.era");
        let mut text = body.to_vec();
        text.push(0);
        std::fs::write(&raw_path, &text).unwrap();
        let packed_path = dir.join("dna.erap");
        {
            let raw = DiskStore::open(&raw_path, Alphabet::dna(), BLOCK).unwrap();
            let _ = PackedDiskStore::pack_store(&raw, &packed_path, BLOCK).unwrap();
        }
        Dataset { dir, raw_path, packed_path }
    }

    fn open_raw(&self) -> DiskStore {
        DiskStore::open(&self.raw_path, Alphabet::dna(), BLOCK).unwrap()
    }

    fn open_packed(&self) -> PackedDiskStore {
        PackedDiskStore::open(&self.packed_path, BLOCK).unwrap()
    }
}

impl Drop for Dataset {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Builds with every scheduler against stores opened by `open`, returning
/// labelled trees and reports.
fn all_scheduler_builds<S: StringStore, F: Fn() -> S>(
    cfg: &EraConfig,
    open: F,
) -> Vec<(String, PartitionedSuffixTree, ConstructionReport)> {
    let pipeline = ConstructionPipeline::new(cfg);
    let mut out = Vec::new();

    let store = open();
    let (tree, report) = pipeline.run(&SerialScheduler::new(&store)).unwrap();
    out.push(("serial".to_string(), tree, report));

    let store = open();
    let (tree, report) = pipeline.run(&SharedMemoryScheduler::new(&store, 3)).unwrap();
    out.push(("shared-memory/3".to_string(), tree, report));

    let stores: Vec<S> = (0..2).map(|_| open()).collect();
    let scheduler = SharedNothingScheduler::new(&stores, SharedNothingOptions::default()).unwrap();
    let (tree, report) = pipeline.run(&scheduler).unwrap();
    out.push(("shared-nothing/2".to_string(), tree, report));
    out
}

fn assert_packed_matches_raw(body: &[u8], budget: usize, block_ratio: u64, tag: &str) {
    let dataset = Dataset::materialise(tag, body);
    let cfg = config(budget);
    let raw_builds = all_scheduler_builds(&cfg, || dataset.open_raw());
    let packed_builds = all_scheduler_builds(&cfg, || dataset.open_packed());
    let reference = tree_bytes(&raw_builds[0].1);

    for ((label, raw_tree, raw_report), (_, packed_tree, packed_report)) in
        raw_builds.iter().zip(&packed_builds)
    {
        assert_eq!(
            tree_bytes(raw_tree),
            reference,
            "{label}: raw build disagrees with serial raw build"
        );
        assert_eq!(
            tree_bytes(packed_tree),
            reference,
            "{label}: packed build must be byte-identical to the raw build"
        );
        let raw_bytes = raw_report.io.bytes_read;
        let packed_bytes = packed_report.io.bytes_read.max(1);
        assert!(
            packed_bytes * 3 <= raw_bytes,
            "{label}: packed store read {packed_bytes} bytes, raw {raw_bytes} — \
             expected a >=3x reduction (2-bit DNA packs 4x denser)"
        );
        // Blocks follow the same trend but compress toward 1x at tiny
        // scale: every scan touches at least one block whether packed or
        // not, so the caller picks the floor (2x at smoke scale, 3x once
        // the string spans many blocks).
        assert!(
            packed_report.io.blocks_read * block_ratio <= raw_report.io.blocks_read.max(1),
            "{label}: packed blocks {} vs raw {}",
            packed_report.io.blocks_read,
            raw_report.io.blocks_read
        );
    }
}

#[test]
fn packed_disk_store_matches_raw_across_schedulers() {
    let body = genome_like(24 << 10, 42);
    assert_packed_matches_raw(&body, 64 << 10, 2, "small");
}

/// Multi-MB version for CI (release mode): `cargo test --release -p era-tests
/// --test packed_disk_io -- --include-ignored`.
#[test]
#[ignore = "multi-MB workload; run explicitly / in the CI packed-io job"]
fn packed_disk_store_matches_raw_on_multi_mb_workload() {
    let body = genome_like(4 << 20, 1117);
    assert_packed_matches_raw(&body, 2 << 20, 3, "large");
}

/// The packed file itself is ~4x smaller than the raw file — the other half
/// of §6.1's argument (more of `S` fits in one block / in memory).
#[test]
fn packed_file_is_four_times_smaller() {
    let body = genome_like(16 << 10, 7);
    let dataset = Dataset::materialise("size", &body);
    let raw_len = std::fs::metadata(&dataset.raw_path).unwrap().len();
    let packed_len = std::fs::metadata(&dataset.packed_path).unwrap().len();
    assert!(packed_len * 3 < raw_len, "packed file {packed_len} bytes vs raw {raw_len}");
}
