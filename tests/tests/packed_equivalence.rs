//! Packed stores must be observationally identical to raw stores.
//!
//! The packed backends decode inside `read_at`, so every layer above them —
//! `BlockCursor`, `collect_occurrences`, the whole construction pipeline —
//! must see exactly the bytes a raw store serves. These property tests pin
//! that: byte-identical trees and identical occurrence sets between raw and
//! packed stores across DNA, protein, English and custom alphabets at the
//! bit-width boundaries (15/16/31/32 symbols), plus a round-trip through the
//! packed on-disk header format.

use era::{ConstructionPipeline, EraConfig, SerialScheduler};
use era_string_store::{
    Alphabet, InMemoryStore, PackedDiskStore, PackedMemoryStore, StringStore, TERMINAL,
};
use era_tests::{scan_occurrences, terminated, tree_bytes};
use proptest::collection;
use proptest::prelude::*;

fn config() -> EraConfig {
    EraConfig {
        memory_budget: 8 << 10,
        r_buffer_size: Some(512),
        input_buffer_size: 128,
        trie_area: 128,
        ..EraConfig::default()
    }
}

/// The alphabets under test: the paper's three plus custom alphabets at the
/// 4-bit/5-bit width boundaries.
fn alphabets() -> Vec<Alphabet> {
    let custom = |n: u8| {
        Alphabet::custom(&(0..n).map(|i| i + 33).collect::<Vec<u8>>()).expect("valid alphabet")
    };
    vec![
        Alphabet::dna(),
        Alphabet::protein(),
        Alphabet::english(),
        custom(15),
        custom(16),
        custom(31),
        custom(32),
    ]
}

/// Maps raw generator bytes onto alphabet symbols.
fn body_from(raw: &[u8], alphabet: &Alphabet) -> Vec<u8> {
    let symbols = alphabet.symbols();
    raw.iter().map(|&b| symbols[b as usize % symbols.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, max_shrink_iters: 0 })]

    #[test]
    fn packed_and_raw_stores_build_identical_trees(
        which in 0usize..7,
        raw_bytes in collection::vec(any::<u8>(), 1..400),
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let cfg = config();
        let pipeline = ConstructionPipeline::new(&cfg);

        let raw = InMemoryStore::from_body(&body, alphabet.clone())
            .expect("valid body")
            .with_block_size(64)
            .unwrap();
        let (raw_tree, _) = pipeline.run(&SerialScheduler::new(&raw)).expect("raw build");

        let packed = PackedMemoryStore::from_body(&body, alphabet.clone())
            .expect("valid body")
            .with_block_size(64)
            .unwrap();
        let (packed_tree, _) = pipeline.run(&SerialScheduler::new(&packed)).expect("packed build");

        prop_assert_eq!(tree_bytes(&raw_tree), tree_bytes(&packed_tree));
    }

    #[test]
    fn packed_and_raw_stores_agree_on_occurrences(
        which in 0usize..7,
        raw_bytes in collection::vec(any::<u8>(), 1..300),
        pat_start in 0usize..300,
        pat_len in 1usize..12,
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let text = terminated(&body);
        let start = pat_start % body.len();
        let mut patterns = vec![
            body[start..(start + pat_len).min(body.len())].to_vec(),
            vec![TERMINAL],
            vec![alphabet.symbols()[0]],
        ];
        patterns.push(b"\x02never".to_vec()); // guaranteed miss

        let raw = InMemoryStore::from_body(&body, alphabet.clone())
            .unwrap()
            .with_block_size(32)
            .unwrap();
        let packed = PackedMemoryStore::from_body(&body, alphabet.clone())
            .unwrap()
            .with_block_size(32)
            .unwrap();
        let from_raw = era::scan::collect_occurrences(&raw, &patterns).expect("raw scan");
        let from_packed = era::scan::collect_occurrences(&packed, &patterns).expect("packed scan");
        prop_assert_eq!(&from_raw, &from_packed);
        for (i, p) in patterns.iter().enumerate() {
            prop_assert_eq!(&from_raw[i], &scan_occurrences(&text, p));
        }
    }

    #[test]
    fn packed_disk_roundtrip_through_header(
        which in 0usize..7,
        raw_bytes in collection::vec(any::<u8>(), 1..300),
    ) {
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let dir = std::env::temp_dir()
            .join(format!("era-packed-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();

        let store = PackedDiskStore::create_in_dir(&dir, "prop", &body, alphabet.clone())
            .expect("create packed file");
        prop_assert_eq!(store.bits_per_symbol(), alphabet.bits_per_symbol());
        prop_assert_eq!(store.read_all().expect("read back"), terminated(&body));

        // Re-open from the header alone: alphabet and contents survive.
        let reopened = PackedDiskStore::open(store.path(), 512).expect("reopen");
        prop_assert_eq!(reopened.alphabet().symbols(), alphabet.symbols());
        prop_assert_eq!(reopened.read_all().expect("read back"), terminated(&body));
    }
}
