//! The SWAR-vectorized multi-pattern scan must answer exactly like the
//! scalar per-position reference.
//!
//! `era::scan::collect_occurrences` filters candidate positions eight bytes
//! at a time and verifies short patterns with masked word compares;
//! `collect_occurrences_scalar` is the per-position reference. These tests
//! pin them to each other — and to the brute-force oracle — across DNA,
//! protein and English inputs, block sizes that put matches on every kind of
//! stretch boundary, and patterns longer and shorter than one SWAR word.

use era::scan::{collect_occurrences, collect_occurrences_scalar};
use era_string_store::{Alphabet, InMemoryStore};
use era_tests::{scan_occurrences, terminated};
use proptest::collection;
use proptest::prelude::*;

/// The paper's three alphabets.
fn alphabets() -> Vec<Alphabet> {
    vec![Alphabet::dna(), Alphabet::protein(), Alphabet::english()]
}

/// Maps raw generator bytes onto alphabet symbols.
fn body_from(raw: &[u8], alphabet: &Alphabet) -> Vec<u8> {
    let symbols = alphabet.symbols();
    raw.iter().map(|&b| symbols[b as usize % symbols.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, max_shrink_iters: 0 })]

    /// Vectorized and scalar scans agree with each other and the oracle on
    /// random inputs over all three alphabets, at block sizes small enough
    /// that matches straddle stretch boundaries.
    #[test]
    fn vectorized_scan_equals_scalar_reference(
        which in 0usize..3,
        raw_bytes in collection::vec(any::<u8>(), 1..500),
        pat_start in 0usize..500,
        pat_len in 1usize..20,
        block_idx in 0usize..4,
    ) {
        let block = [8usize, 16, 64, 256][block_idx];
        let alphabet = alphabets()[which].clone();
        let body = body_from(&raw_bytes, &alphabet);
        let text = terminated(&body);
        let start = pat_start % body.len();
        // Sampled substrings (short ones exercise the masked word compare,
        // len > 8 the slice-compare fallback), the terminal, a single-symbol
        // pattern, an empty pattern and a guaranteed miss.
        let patterns = vec![
            body[start..(start + pat_len).min(body.len())].to_vec(),
            body[start..(start + 3).min(body.len())].to_vec(),
            vec![0u8],
            vec![alphabet.symbols()[0]],
            Vec::new(),
            b"\x02never".to_vec(),
        ];
        let store = InMemoryStore::from_body(&body, alphabet.clone())
            .unwrap()
            .with_block_size(block)
            .unwrap();
        let fast = collect_occurrences(&store, &patterns).expect("vectorized scan");
        let slow = collect_occurrences_scalar(&store, &patterns).expect("scalar scan");
        prop_assert_eq!(&fast, &slow);
        for (i, p) in patterns.iter().enumerate() {
            let expected = if p.is_empty() { Vec::new() } else { scan_occurrences(&text, p) };
            prop_assert_eq!(&fast[i], &expected);
        }
    }
}

/// A match that begins in the scalar tail of one stretch and ends inside the
/// next stretch must be found exactly once, by both scan flavors.
#[test]
fn boundary_straddling_matches_are_found_once() {
    // Block size 8 makes every stretch one SWAR word wide, so a 7-position
    // offset pattern of length 10 straddles every boundary shape: filter
    // word, scalar tail and lookahead region.
    for offset in 0..16usize {
        let mut body = vec![b'A'; 64];
        let needle = b"CGTACGTACG";
        body[offset..offset + needle.len()].copy_from_slice(needle);
        let patterns = vec![needle.to_vec(), b"ACGTACGTACGTACGTACGT".to_vec(), b"CG".to_vec()];
        for block in [8usize, 16] {
            let store = InMemoryStore::from_body(&body, Alphabet::dna())
                .unwrap()
                .with_block_size(block)
                .unwrap();
            let fast = collect_occurrences(&store, &patterns).unwrap();
            let slow = collect_occurrences_scalar(&store, &patterns).unwrap();
            assert_eq!(fast, slow, "offset {offset} block {block}");
            assert_eq!(fast[0], vec![offset as u32], "offset {offset} block {block}");
            let text = terminated(&body);
            for (i, p) in patterns.iter().enumerate() {
                assert_eq!(fast[i], scan_occurrences(&text, p), "offset {offset} block {block}");
            }
        }
    }
}
