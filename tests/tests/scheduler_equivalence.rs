//! Driver equivalence across the three `GroupScheduler`s.
//!
//! The `ConstructionPipeline` guarantees that the scheduler only decides *who
//! runs which virtual tree* — never what gets built. These tests pin that
//! contract: the serial, shared-memory and shared-nothing schedulers must
//! produce byte-identical `PartitionedSuffixTree`s (same partitions in the
//! same order, same serialized bytes, same query answers) on realistic DNA,
//! protein and English workloads.

use era::{
    ConstructionPipeline, EraConfig, SchedulerKind, SerialScheduler, SharedMemoryScheduler,
    SharedNothingOptions, SharedNothingScheduler, SuffixIndex,
};
use era_string_store::InMemoryStore;
use era_suffix_tree::{validate_partitioned, PartitionedSuffixTree};
use era_tests::{scan_occurrences, terminated, tree_bytes};
use era_workloads::{english_like, genome_like, protein_like};

fn config() -> EraConfig {
    EraConfig {
        memory_budget: 8 << 10,
        r_buffer_size: Some(512),
        input_buffer_size: 128,
        trie_area: 128,
        ..EraConfig::default()
    }
}

fn store(body: &[u8]) -> InMemoryStore {
    InMemoryStore::from_body_inferred(body).expect("valid body").with_block_size(64).unwrap()
}

/// Builds the same body with all three schedulers (several worker/node counts)
/// and returns the labelled trees.
fn all_scheduler_builds(body: &[u8]) -> Vec<(String, PartitionedSuffixTree)> {
    let cfg = config();
    let pipeline = ConstructionPipeline::new(&cfg);
    let mut out = Vec::new();

    let s = store(body);
    out.push(("serial".to_string(), pipeline.run(&SerialScheduler::new(&s)).unwrap().0));

    for threads in [2usize, 4] {
        let s = store(body);
        out.push((
            format!("shared-memory/{threads}"),
            pipeline.run(&SharedMemoryScheduler::new(&s, threads)).unwrap().0,
        ));
    }

    for nodes in [2usize, 3] {
        let stores: Vec<InMemoryStore> = (0..nodes).map(|_| store(body)).collect();
        let scheduler =
            SharedNothingScheduler::new(&stores, SharedNothingOptions::default()).unwrap();
        out.push((format!("shared-nothing/{nodes}"), pipeline.run(&scheduler).unwrap().0));
    }
    out
}

#[test]
fn schedulers_produce_byte_identical_trees_on_all_workloads() {
    for (name, body) in [
        ("dna", genome_like(4000, 7)),
        ("protein", protein_like(3000, 8)),
        ("english", english_like(3500, 9)),
    ] {
        let text = terminated(&body);
        let builds = all_scheduler_builds(&body);
        let reference_bytes = tree_bytes(&builds[0].1);
        for (scheduler, tree) in &builds {
            validate_partitioned(tree, &text)
                .unwrap_or_else(|e| panic!("{scheduler} built an invalid tree on {name}: {e}"));
            assert_eq!(
                tree_bytes(tree),
                reference_bytes,
                "{scheduler} disagrees with serial on the {name} workload"
            );
        }
    }
}

#[test]
fn schedulers_answer_queries_identically() {
    let body = genome_like(3000, 21);
    let text = terminated(&body);
    // Patterns sampled from the text (hits) plus guaranteed misses.
    let mut patterns: Vec<Vec<u8>> = vec![b"NOPE".to_vec(), vec![0u8], b"Z".to_vec()];
    for (start, len) in [(0usize, 3usize), (500, 8), (1200, 1), (2990, 12)] {
        patterns.push(body[start..(start + len).min(body.len())].to_vec());
    }
    for (scheduler, tree) in all_scheduler_builds(&body) {
        for pattern in &patterns {
            let expected = scan_occurrences(&text, pattern);
            assert_eq!(
                tree.find_all(&text, pattern),
                expected,
                "{scheduler} pattern {:?}",
                String::from_utf8_lossy(pattern)
            );
            assert_eq!(tree.count(&text, pattern), expected.len(), "{scheduler}");
        }
    }
}

#[test]
fn builder_threads_pick_the_scheduler_automatically() {
    let body = genome_like(2000, 5);
    let serial =
        SuffixIndex::builder().config(config()).threads(1).build_from_bytes(&body).unwrap();
    assert_eq!(serial.report().algorithm, "era");

    let parallel =
        SuffixIndex::builder().config(config()).threads(4).build_from_bytes(&body).unwrap();
    assert_eq!(parallel.report().algorithm, "era-parallel-sm");
    assert_eq!(parallel.report().per_node.len(), 4);
    assert_eq!(parallel.suffix_array(), serial.suffix_array());

    // An explicit scheduler choice overrides the thread-derived default.
    let forced = SuffixIndex::builder()
        .config(config())
        .threads(4)
        .scheduler(SchedulerKind::Serial)
        .build_from_bytes(&body)
        .unwrap();
    assert_eq!(forced.report().algorithm, "era");
    assert_eq!(forced.suffix_array(), serial.suffix_array());
}
