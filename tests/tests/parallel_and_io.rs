//! Integration tests for the parallel drivers and for the I/O behaviour the
//! paper's optimisations are about (grouping, elastic range, seek skipping,
//! sequential access).

use era::{
    construct_parallel_sm, construct_serial, construct_shared_nothing, EraConfig, RangePolicy,
    SharedNothingOptions,
};
use era_baselines::{ukkonen_construct, wavefront_construct, WaveFrontConfig};
use era_string_store::{Alphabet, InMemoryStore};
use era_suffix_tree::validate_partitioned;
use era_tests::terminated;
use era_workloads::{genome_like, uniform_dna};

fn cfg(budget: usize) -> EraConfig {
    EraConfig {
        memory_budget: budget,
        r_buffer_size: Some(1 << 10),
        input_buffer_size: 256,
        trie_area: 256,
        ..EraConfig::default()
    }
}

fn dna_store(body: &[u8]) -> InMemoryStore {
    InMemoryStore::from_body(body, Alphabet::dna()).unwrap().with_block_size(256).unwrap()
}

#[test]
fn parallel_shared_memory_equals_serial_for_many_thread_counts() {
    let body = genome_like(6000, 77);
    let text = terminated(&body);
    let (serial_tree, _) = construct_serial(&dna_store(&body), &cfg(12 << 10)).unwrap();
    for threads in [2usize, 3, 4, 8] {
        let config = EraConfig { threads, ..cfg(12 << 10) };
        let (tree, report) = construct_parallel_sm(&dna_store(&body), &config).unwrap();
        validate_partitioned(&tree, &text).unwrap();
        assert_eq!(tree.lexicographic_suffixes(), serial_tree.lexicographic_suffixes());
        assert_eq!(report.per_node.len(), threads);
    }
}

#[test]
fn shared_nothing_equals_serial_and_balances_load() {
    let body = genome_like(8000, 78);
    let text = terminated(&body);
    let (serial_tree, _) = construct_serial(&dna_store(&body), &cfg(10 << 10)).unwrap();
    for nodes in [2usize, 4, 8] {
        let stores: Vec<InMemoryStore> = (0..nodes).map(|_| dna_store(&body)).collect();
        let (tree, report) =
            construct_shared_nothing(&stores, &cfg(10 << 10), &SharedNothingOptions::default())
                .unwrap();
        validate_partitioned(&tree, &text).unwrap();
        assert_eq!(tree.lexicographic_suffixes(), serial_tree.lexicographic_suffixes());
        // Load balance: with many virtual trees, no node should sit idle.
        let busy = report.per_node.iter().filter(|n| n.virtual_trees > 0).count();
        assert_eq!(busy, nodes, "every node should receive work");
        // Aggregate I/O equals the sum over the nodes.
        let sum: u64 = report.per_node.iter().map(|n| n.io.bytes_read).sum();
        assert_eq!(report.io.bytes_read, sum);
    }
}

#[test]
fn grouping_and_elastic_range_reduce_scans() {
    let body = genome_like(12_000, 5);
    // Grouping on vs off.
    let (_, with_grouping) = construct_serial(&dna_store(&body), &cfg(10 << 10)).unwrap();
    let no_grouping = EraConfig { group_virtual_trees: false, ..cfg(10 << 10) };
    let (_, without_grouping) = construct_serial(&dna_store(&body), &no_grouping).unwrap();
    assert!(with_grouping.virtual_trees < without_grouping.virtual_trees);
    assert!(
        with_grouping.io.full_scans < without_grouping.io.full_scans,
        "grouping: {} scans vs {} scans",
        with_grouping.io.full_scans,
        without_grouping.io.full_scans
    );

    // Elastic vs small static range.
    let elastic = cfg(10 << 10);
    let static16 = EraConfig { range_policy: RangePolicy::Fixed(16), ..cfg(10 << 10) };
    let (_, r_elastic) = construct_serial(&dna_store(&body), &elastic).unwrap();
    let (_, r_static) = construct_serial(&dna_store(&body), &static16).unwrap();
    assert!(
        r_elastic.io.full_scans <= r_static.io.full_scans,
        "elastic {} vs static {}",
        r_elastic.io.full_scans,
        r_static.io.full_scans
    );
}

#[test]
fn era_access_pattern_is_overwhelmingly_sequential() {
    // With the seek optimisation disabled every scan reads straight through
    // the string, so all but the first block fetch of each scan must be
    // classified as sequential. (With skipping enabled the forward seeks are
    // counted as seeks, which is exercised separately below.)
    let body = uniform_dna(8000, 6);
    let config = EraConfig { seek_optimization: false, ..cfg(8 << 10) };
    let (_, report) = construct_serial(&dna_store(&body), &config).unwrap();
    assert!(
        report.io.sequential_fraction() > 0.9,
        "sequential fraction was {:.3}",
        report.io.sequential_fraction()
    );
}

#[test]
fn era_reads_less_than_wavefront_at_the_same_budget() {
    let body = genome_like(16_000, 41);
    let budget = 12 << 10;
    let (_, era_report) = construct_serial(&dna_store(&body), &cfg(budget)).unwrap();
    let (_, wf_report) = wavefront_construct(
        &dna_store(&body),
        &WaveFrontConfig { memory_budget: budget, ..Default::default() },
    )
    .unwrap();
    assert!(
        era_report.io.bytes_read < wf_report.io.bytes_read,
        "ERA {} bytes vs WaveFront {} bytes",
        era_report.io.bytes_read,
        wf_report.io.bytes_read
    );
    assert!(era_report.partitions <= wf_report.partitions);
}

#[test]
fn in_memory_baseline_reads_the_string_exactly_once() {
    let body = uniform_dna(5000, 8);
    let (_, report) = ukkonen_construct(&dna_store(&body)).unwrap();
    assert_eq!(report.io.full_scans, 1);
    assert!(report.io.bytes_read >= body.len() as u64);
}

#[test]
fn seek_optimization_skips_blocks_without_changing_the_result() {
    let body = genome_like(20_000, 55);
    let text = terminated(&body);
    let with_seek = cfg(10 << 10);
    let without_seek = EraConfig { seek_optimization: false, ..cfg(10 << 10) };
    let store_a = dna_store(&body);
    let store_b = dna_store(&body);
    let (tree_a, rep_a) = construct_serial(&store_a, &with_seek).unwrap();
    let (tree_b, rep_b) = construct_serial(&store_b, &without_seek).unwrap();
    validate_partitioned(&tree_a, &text).unwrap();
    assert_eq!(tree_a.lexicographic_suffixes(), tree_b.lexicographic_suffixes());
    assert!(rep_a.io.blocks_skipped > 0, "seek optimisation never skipped a block");
    assert_eq!(rep_b.io.blocks_skipped, 0);
    assert!(rep_a.io.bytes_read <= rep_b.io.bytes_read);
}

#[test]
fn index_api_works_end_to_end_with_threads() {
    let body = genome_like(10_000, 90);
    let index = era::SuffixIndex::builder()
        .memory_budget(256 << 10)
        .threads(4)
        .build_from_bytes(&body)
        .unwrap();
    let probe = &body[4000..4020];
    let hits = index.find_all(probe);
    assert!(hits.contains(&4000));
    assert_eq!(index.count(probe), hits.len());
    assert_eq!(index.suffix_array().len(), body.len() + 1);
}
