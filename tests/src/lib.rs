//! Shared helpers for the cross-crate integration and property tests.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use era_string_store::{Alphabet, InMemoryStore};
use era_suffix_tree::{naive_suffix_tree, PartitionedSuffixTree, SuffixTree};

/// Appends the terminal to a body.
pub fn terminated(body: &[u8]) -> Vec<u8> {
    let mut t = body.to_vec();
    t.push(0);
    t
}

/// Builds the reference (naive) suffix tree for a body.
pub fn reference_tree(body: &[u8]) -> SuffixTree {
    naive_suffix_tree(&terminated(body))
}

/// Creates an in-memory store with an inferred alphabet and a small block
/// size so that block-level behaviour is exercised even on tiny inputs.
pub fn small_block_store(body: &[u8]) -> InMemoryStore {
    InMemoryStore::from_body_inferred(body)
        .expect("valid body")
        .with_block_size(64)
        .expect("non-zero block size")
}

/// Creates a DNA store.
pub fn dna_store(body: &[u8]) -> InMemoryStore {
    InMemoryStore::from_body(body, Alphabet::dna()).expect("valid DNA body")
}

/// A small corpus of structurally diverse strings used across the integration
/// tests: repetitive, random-ish, periodic, and the paper's running example.
pub fn corpus() -> Vec<Vec<u8>> {
    vec![
        b"TGGTGGTGGTGCGGTGATGGTGC".to_vec(), // the paper's Figure 2 string
        b"GATTACAGATTACAGGATCCGATTACATTTTACAGAGATTACCA".to_vec(),
        b"mississippi".to_vec(),
        b"abracadabra".to_vec(),
        b"aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
        b"abcabcabcabcabcabcabcabcabc".to_vec(),
        b"a".to_vec(),
        b"thequickbrownfoxjumpsoverthelazydogthequickbrownfox".to_vec(),
    ]
}

/// Serializes every partition of the tree into one byte string, capturing the
/// exact partition boundaries and node layout — not just the leaf order. Two
/// trees are byte-identical iff these strings are equal.
pub fn tree_bytes(tree: &PartitionedSuffixTree) -> Vec<u8> {
    let mut out = Vec::new();
    for partition in tree.partitions() {
        out.extend_from_slice(&(partition.prefix.len() as u64).to_le_bytes());
        out.extend_from_slice(&partition.prefix);
        era_suffix_tree::serialize::write_flat_tree(&mut out, &partition.tree)
            .expect("serialization succeeds");
    }
    out
}

/// Every occurrence of `pattern` in `text` found by direct scanning — the
/// query oracle.
pub fn scan_occurrences(text: &[u8], pattern: &[u8]) -> Vec<u32> {
    if pattern.is_empty() {
        return (0..text.len() as u32).collect();
    }
    (0..text.len()).filter(|&i| text[i..].starts_with(pattern)).map(|i| i as u32).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use era_string_store::StringStore;

    #[test]
    fn helpers_are_consistent() {
        let body = b"banana";
        assert_eq!(terminated(body).len(), 7);
        assert_eq!(reference_tree(body).leaf_count(), 7);
        assert_eq!(scan_occurrences(&terminated(body), b"an"), vec![1, 3]);
        assert_eq!(small_block_store(body).len(), 7);
        assert_eq!(dna_store(b"ACGT").len(), 5);
    }
}
